"""The packet-switched Network-on-Chip used as the paper's system-level baseline.

Structurally the twin of :class:`repro.noc.network.CircuitSwitchedNoC`, but
built from :class:`~repro.baseline.router.PacketSwitchedRouter` instances and
:class:`~repro.baseline.link.PacketLink` channels.  No circuit configuration
is needed — packets find their way with XY routing — which is the flexibility
the paper acknowledges the packet-switched approach keeps, at the cost of
buffering and arbitration energy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

from repro.baseline.link import PacketLink
from repro.baseline.router import PacketSwitchedRouter
from repro.baseline.testbench import TilePacketDriver
from repro.common import ConfigurationError
from repro.energy.activity import ActivityCounters
from repro.energy.power import PowerBreakdown
from repro.energy.technology import TSMC_130NM_LVHP, Technology
from repro.noc.topology import Mesh2D, Position
from repro.sim.engine import SimulationKernel

__all__ = ["PacketStreamEndpoints", "PacketSwitchedNoC"]

WordSource = Callable[[], int]


@dataclass
class PacketStreamEndpoints:
    """Book-keeping for one word stream carried by the packet-switched network."""

    name: str
    source: TilePacketDriver
    src: Position
    dst: Position

    @property
    def words_sent(self) -> int:
        """Words handed to the source tile interface."""
        return self.source.words_sent


class PacketSwitchedNoC:
    """A complete packet-switched mesh network."""

    def __init__(
        self,
        mesh: Mesh2D,
        frequency_hz: float = 25e6,
        num_vcs: int = 4,
        fifo_depth: int = 8,
        data_width: int = 16,
        words_per_packet: int = 16,
        tech: Technology = TSMC_130NM_LVHP,
        schedule: str = "auto",
    ) -> None:
        self.mesh = mesh
        self.frequency_hz = frequency_hz
        self.num_vcs = num_vcs
        self.fifo_depth = fifo_depth
        self.data_width = data_width
        self.words_per_packet = words_per_packet
        self.tech = tech
        self.kernel = SimulationKernel(frequency_hz, schedule=schedule)

        self.routers: Dict[Position, PacketSwitchedRouter] = {}
        for position in mesh.positions():
            router = PacketSwitchedRouter(
                f"ps_{mesh.router_name(position)}",
                position=position,
                num_vcs=num_vcs,
                fifo_depth=fifo_depth,
                data_width=data_width,
                words_per_packet=words_per_packet,
                tech=tech,
            )
            self.routers[position] = router

        self.links: Dict[Tuple[Position, Position], PacketLink] = {}
        for src, dst in mesh.directed_links():
            self.links[(src, dst)] = PacketLink(
                f"pkt_{src[0]}_{src[1]}__{dst[0]}_{dst[1]}", num_vcs
            )

        for position, router in self.routers.items():
            for port, neighbor in mesh.neighbors(position).items():
                tx = self.links[(position, neighbor)]
                rx = self.links[(neighbor, position)]
                router.attach_link(port, rx, tx)

        for router in self.routers.values():
            self.kernel.add(router)

        self.streams: Dict[str, PacketStreamEndpoints] = {}

    # -- access -----------------------------------------------------------------------------

    def router_at(self, position: Position) -> PacketSwitchedRouter:
        """The router at *position*."""
        try:
            return self.routers[position]
        except KeyError:
            raise ConfigurationError(f"no router at position {position}") from None

    # -- traffic -----------------------------------------------------------------------------

    def add_stream(
        self,
        name: str,
        src: Position,
        dst: Position,
        word_source: WordSource,
        load: float = 1.0,
        vc: Optional[int] = None,
    ) -> PacketStreamEndpoints:
        """Attach a paced word stream from the tile at *src* to the tile at *dst*."""
        if name in self.streams:
            raise ConfigurationError(f"stream {name!r} already exists")
        for position in (src, dst):
            if not self.mesh.contains(position):
                raise ConfigurationError(f"position {position} is outside the mesh")
        if vc is None:
            vc = len(self.streams) % self.num_vcs
        driver = TilePacketDriver(
            f"{name}_src",
            self.router_at(src),
            word_source,
            dest=dst,
            load=load,
            vc=vc,
            words_per_packet=self.words_per_packet,
        )
        self.kernel.add(driver)
        endpoints = PacketStreamEndpoints(name, driver, src, dst)
        self.streams[name] = endpoints
        return endpoints

    # -- execution ------------------------------------------------------------------------------

    def run(self, cycles: int) -> int:
        """Advance the whole network by *cycles* clock cycles."""
        return self.kernel.run(cycles)

    def run_for_time(self, seconds: float) -> int:
        """Advance the whole network by *seconds* of simulated time."""
        return self.kernel.run_for_time(seconds)

    # -- reporting --------------------------------------------------------------------------------

    def words_received_at(self, position: Position, src: Optional[Position] = None) -> int:
        """Payload words delivered to the tile at *position* (optionally from *src* only)."""
        tile = self.router_at(position).tile
        if src is None:
            return tile.words_received
        return sum(len(p.words) for p in tile.received_packets if p.src == src)

    def stream_statistics(self) -> Dict[str, Dict[str, int]]:
        """Words sent / received per registered stream."""
        return {
            name: {
                "sent": ep.words_sent,
                "received": self.words_received_at(ep.dst, ep.src),
            }
            for name, ep in self.streams.items()
        }

    def total_power(self, frequency_hz: Optional[float] = None) -> PowerBreakdown:
        """Aggregate power of all routers."""
        frequency = frequency_hz if frequency_hz is not None else self.frequency_hz
        return PowerBreakdown.total_of(
            router.power(frequency) for router in self.routers.values()
        )

    def merged_activity(self) -> ActivityCounters:
        """Activity counters of all routers folded together."""
        return ActivityCounters.merged(
            (router.activity for router in self.routers.values()), name="packet_network"
        )

    def total_area_mm2(self) -> float:
        """Total router area of the network."""
        return sum(router.total_area_mm2 for router in self.routers.values())

    def energy_per_delivered_bit_pj(self, frequency_hz: Optional[float] = None) -> float:
        """Average network energy per delivered payload bit (mesh experiments)."""
        frequency = frequency_hz if frequency_hz is not None else self.frequency_hz
        delivered_bits = sum(
            self.words_received_at(ep.dst, ep.src) for ep in self.streams.values()
        ) * self.data_width
        if delivered_bits == 0:
            return float("inf")
        duration_s = self.kernel.cycle / frequency
        power = self.total_power(frequency)
        return power.total_uw * duration_s * 1e6 / delivered_bits
