"""The packet-switched Network-on-Chip used as the paper's system-level baseline.

The fabric twin of :class:`repro.noc.network.CircuitSwitchedNoC` — both share
:class:`~repro.noc.fabric.NocBase` — but built from
:class:`~repro.baseline.router.PacketSwitchedRouter` instances and
:class:`~repro.baseline.link.PacketLink` channels.  No circuit configuration
is needed — packets find their way with the topology's routing table
(dimension-order XY on the paper's mesh, shortest-path tables on a torus or
degraded mesh) — which is the flexibility the paper acknowledges the
packet-switched approach keeps, at the cost of buffering and arbitration
energy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.baseline.link import PacketLink
from repro.baseline.router import PacketSwitchedRouter
from repro.baseline.testbench import TilePacketDriver
from repro.common import ConfigurationError
from repro.core.header import phits_per_packet
from repro.energy.technology import TSMC_130NM_LVHP, Technology
from repro.noc.fabric import NocBase, WordSource, register_network_kind
from repro.noc.routing import RoutingTable
from repro.noc.topology import Position, Topology
from repro.noc.word_proxy import PacedPullModel

__all__ = ["PacketStreamEndpoints", "PacketSwitchedNoC"]


@dataclass
class PacketStreamEndpoints:
    """Book-keeping for one word stream carried by the packet-switched network."""

    name: str
    source: Optional[TilePacketDriver]
    src: Position
    dst: Position

    @property
    def words_sent(self) -> int:
        """Words handed to the source tile interface."""
        return self.source.words_sent if self.source is not None else 0


@register_network_kind("packet", "packet_switched", "ps")
class PacketSwitchedNoC(NocBase):
    """A complete packet-switched network on any topology."""

    kind = "packet_switched"
    activity_name = "packet_network"
    fault_drop_unit = "flit"

    def __init__(
        self,
        topology: Topology,
        frequency_hz: float = 25e6,
        num_vcs: int = 4,
        fifo_depth: int = 8,
        data_width: int = 16,
        words_per_packet: int = 16,
        tech: Technology = TSMC_130NM_LVHP,
        schedule: str = "auto",
        region=None,
    ) -> None:
        self.num_vcs = num_vcs
        self.fifo_depth = fifo_depth
        self.words_per_packet = words_per_packet
        #: Per-router next-hop decisions, derived once from the full
        #: topology (also in a shard region network, so every shard's
        #: routers take the identical next-hop decisions).
        self.routing = RoutingTable(topology)
        super().__init__(
            topology,
            frequency_hz=frequency_hz,
            data_width=data_width,
            tech=tech,
            schedule=schedule,
            region=region,
        )

    # -- construction hooks -----------------------------------------------------------

    def _build_router(self, position: Position) -> PacketSwitchedRouter:
        return PacketSwitchedRouter(
            f"ps_{self.topology.router_name(position)}",
            position=position,
            num_vcs=self.num_vcs,
            fifo_depth=self.fifo_depth,
            data_width=self.data_width,
            words_per_packet=self.words_per_packet,
            tech=self.tech,
            route=self.routing.port_for,
        )

    def _build_link(self, src: Position, dst: Position) -> PacketLink:
        return PacketLink(f"pkt_{src[0]}_{src[1]}__{dst[0]}_{dst[1]}", self.num_vcs)

    def _stream_received(self, endpoints: PacketStreamEndpoints) -> int:
        if not self.is_local(endpoints.dst):
            return 0
        return self.words_received_at(endpoints.dst, endpoints.src)

    def _stream_drained(self, endpoints: PacketStreamEndpoints) -> bool:
        # Exact conservation for a halted packet stream: every packetised
        # word is either a flit worm somewhere in the buffers/links or a
        # delivered payload at the destination tile — equality means the
        # worms are through.  Words a fault swallowed never arrive, so a
        # broken path falls back to the stability drain.
        return (
            self.words_received_at(endpoints.dst, endpoints.src)
            == endpoints.words_sent
        )

    def refresh_routing(self, degraded: Topology) -> None:
        """Route around dead resources: rebuild the shared routing table.

        The routers hold a bound reference to ``self.routing.port_for``, so
        the in-place rebuild redirects every packet head decided from the
        next cycle on; worms already past the dead link keep their reserved
        path on the surviving wires.
        """
        self.routing.rebuild(degraded)

    # -- traffic -----------------------------------------------------------------------------

    def add_stream(
        self,
        name: str,
        src: Position,
        dst: Position,
        word_source: WordSource,
        load: float = 1.0,
        vc: Optional[int] = None,
        words_per_packet: Optional[int] = None,
    ) -> PacketStreamEndpoints:
        """Attach a paced word stream from the tile at *src* to the tile at *dst*."""
        if name in self.streams:
            raise ConfigurationError(f"stream {name!r} already exists")
        for position in (src, dst):
            if not self.topology.contains(position):
                raise ConfigurationError(f"position {position} is outside the topology")
        if vc is None:
            # Derived from the stream-registry size, which every shard of a
            # replayed configuration sequence grows identically.
            vc = len(self.streams) % self.num_vcs
        # The tile driver pulls one word per pacer emission, unconditionally;
        # its pacer always uses the driver-default 16-bit/4-bit geometry.
        word_source = self._register_stream_source(
            name,
            word_source,
            self.is_local(src),
            lambda: PacedPullModel(load, phits_per_packet(16, 4), self.kernel.cycle),
        )
        driver = None
        if self.is_local(src):
            driver = TilePacketDriver(
                f"{name}_src",
                self.router_at(src),
                word_source,
                dest=dst,
                load=load,
                vc=vc,
                words_per_packet=words_per_packet or self.words_per_packet,
            )
            self.kernel.add(driver)
        endpoints = PacketStreamEndpoints(name, driver, src, dst)
        self.streams[name] = endpoints
        return endpoints

    def _detach_stream_components(self, endpoints: PacketStreamEndpoints) -> None:
        self._remove_component(endpoints.source)

    def attach_channel(
        self,
        name: str,
        src: Position,
        dst: Position,
        bandwidth_mbps: float,
        word_source: WordSource,
        load: float = 1.0,
        allocation: object = None,
    ) -> PacketStreamEndpoints:
        # Packet switching needs no admission — packets simply contend for
        # buffers and links, the flexibility-versus-energy trade the paper
        # discusses — but the stream is paced at the channel's requested
        # bandwidth (× load) so every network kind offers the identical word
        # stream.  The tile driver's load=1.0 reference rate is one word per
        # serialisation interval, i.e. the capacity of one 4-bit lane.
        phits = phits_per_packet(self.data_width, 4)
        lane_equivalent_mbps = self.data_width * self.frequency_hz / phits / 1e6
        effective_load = min(1.0, load * bandwidth_mbps / lane_equivalent_mbps)
        # Low-rate channels get packets short enough to fill within a bounded
        # number of cycles (a 16-word packet would take longer than a whole
        # experiment to fill at kbit/s rates), paying the packet fabric's
        # real price for them: more header flits per payload word.  High-rate
        # channels keep the network's full packet size.
        fill_budget_cycles = 500
        fillable_words = int(effective_load / phits * fill_budget_cycles)
        words_per_packet = max(1, min(self.words_per_packet, fillable_words))
        return self.add_stream(
            name, src, dst, word_source, effective_load, words_per_packet=words_per_packet
        )

    # -- reporting --------------------------------------------------------------------------

    def words_received_at(self, position: Position, src: Optional[Position] = None) -> int:
        """Payload words delivered to the tile at *position* (optionally from *src* only)."""
        tile = self.router_at(position).tile
        if src is None:
            return tile.words_received
        return sum(len(p.words) for p in tile.received_packets if p.src == src)
