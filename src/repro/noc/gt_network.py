"""Simulated Æthereal-style TDMA guaranteed-throughput network (Table 4 / Section 4).

The paper compares its lane-division circuit-switched router against the
Philips Æthereal router, which provides guaranteed throughput with a
*contention-free slot table*: time on every link is divided into revolving
TDMA slots, and a connection owns one slot per revolution on every link of
its route, offset by one slot per hop because each router stage adds one
cycle of latency.  Until now that side of the comparison was only the
analytic constants stub in :mod:`repro.baseline.aethereal`; this module makes
it a third *running* network kind on :class:`repro.noc.fabric.NocBase`:

* :class:`TdmaLink` — one word-wide wire between routers (no flow control:
  contention-freedom is guaranteed by admission, so there is nothing to
  arbitrate or acknowledge),
* :class:`SlotTableRouter` — a cycle-driven router whose only state is the
  slot tables and one output register per port; slot ``cycle % S`` selects
  which input each output latches,
* :class:`TimeDivisionNoC` — the full network, registered with
  :func:`repro.noc.fabric.build_network` as ``"gt"`` / ``"aethereal"`` /
  ``"tdma"``, admission-controlled by
  :class:`repro.noc.slot_table.SlotTableAllocator`.

Energy and area are backed by the published Æthereal constants
(:class:`repro.energy.area.AetherealRouterArea`, 0.175 mm² after layout): the
paper gives no component breakdown ("n.a." in Table 4), so static and clock
power follow the quoted area while switching activity (register/link toggles,
slot-table writes) is recorded by the simulation like for the other routers.
The routers participate in the kernel's quiescence protocol — an idle slot
table is a fixed point, so an unloaded GT fabric costs nothing to simulate.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

from repro.baseline.aethereal import AETHEREAL
from repro.common import (
    NEIGHBOR_PORTS,
    ConfigurationError,
    Port,
    bit_mask,
    toggle_count,
)
from repro.core.testbench import LoadPacer
from repro.energy.activity import ActivityCounters, ActivityKeys
from repro.energy.area import AetherealRouterArea
from repro.energy.power import PowerBreakdown, PowerModel
from repro.energy.technology import TSMC_130NM_LVHP, Technology
from repro.noc.fabric import NocBase, WordSource, register_network_kind
from repro.noc.slot_table import SlotAllocation, SlotCircuit, SlotTableAllocator
from repro.noc.topology import Position, Topology
from repro.noc.word_proxy import GtPullModel
from repro.sim.engine import ClockedComponent
from repro.sim.signals import DirtyBit, WakeListener

__all__ = [
    "TdmaLink",
    "TdmaTileInterface",
    "SlotTableRouter",
    "GtStreamDriver",
    "GtLinkStreamDriver",
    "GtLinkStreamConsumer",
    "GtStreamEndpoints",
    "TimeDivisionNoC",
]


class TdmaLink:
    """One unidirectional word-wide wire between two slot-table routers.

    ``forward`` holds the word committed by the upstream router's output
    register (``None`` = idle slot).  There is no reverse path: admission
    guarantees contention-freedom, so the receiver can never stall.
    """

    __slots__ = ("name", "data_width", "_mask", "forward", "forward_dirty", "dead", "dropped")

    def __init__(self, name: str, data_width: int = 16) -> None:
        if data_width < 1:
            raise ValueError("data width must be positive")
        self.name = name
        self.data_width = data_width
        self._mask = bit_mask(data_width)
        self.forward: Optional[int] = None
        #: Dirty-bit of the forward wire; its listener is the reading
        #: (downstream) router's ``wake``.
        self.forward_dirty = DirtyBit()
        #: True once :meth:`fail` killed the wire (fault model).
        self.dead = False
        #: Words swallowed by the dead wire (in-flight at the kill plus
        #: every word driven afterwards).
        self.dropped = 0

    def watch_forward(self, listener: WakeListener) -> None:
        """Wake *listener* whenever a word is placed on the wire."""
        self.forward_dirty.listener = listener

    def drive(self, word: Optional[int]) -> None:
        """Set the wire for the next cycle (called by the upstream router).

        Only a word wakes the receiver: the receiver cannot have been asleep
        while a word was on the wire (latching it keeps it busy for at least
        the following cycle), so the word → idle transition needs no wake-up.
        """
        if word == self.forward:
            return
        if self.dead:
            # A broken wire swallows the slot's word; there is no flow
            # control to unwind (admission guarantees contention-freedom).
            if word is not None:
                self.dropped += 1
            return
        if word is not None and not 0 <= word <= self._mask:
            raise ValueError(f"word {word:#x} does not fit in {self.data_width} bits")
        self.forward = word
        if word is not None:
            self.forward_dirty.mark()

    def read(self) -> Optional[int]:
        """Sample the word currently on the wire."""
        return self.forward

    def idle(self) -> bool:
        """True when no word is on the wire."""
        return self.forward is None

    def reset(self) -> None:
        """Return the wire to the idle state."""
        self.forward = None

    def fail(self) -> int:
        """Kill the wire: it falls idle and future words are swallowed.

        Returns the number of in-flight words lost (0 or 1).  The downstream
        router is woken so it re-samples the dead wire.
        """
        if self.dead:
            return 0
        self.dead = True
        dropped = 0
        if self.forward is not None:
            dropped = 1
            self.dropped += 1
            self.forward = None
        self.forward_dirty.mark()
        return dropped

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TdmaLink({self.name!r}, data_width={self.data_width})"


class TdmaTileInterface:
    """Word-level interface between a processing tile and its slot-table router.

    Words are queued per *connection* (the admission-layer channel name); the
    router pulls one word from a connection's queue whenever the slot table
    reaches one of the connection's injection slots, and delivered words are
    collected per connection on the receiving side.
    """

    def __init__(self, router: "SlotTableRouter") -> None:
        self.router = router
        self._tx: Dict[str, Deque[int]] = {}
        self.received: Dict[str, List[int]] = {}

    # -- sending --------------------------------------------------------------------

    def send(self, connection: str, word: int) -> None:
        """Queue *word* for injection on *connection*'s next owned slot."""
        if not 0 <= word <= self.router._mask:
            raise ValueError(
                f"word {word:#x} does not fit in {self.router.data_width} bits"
            )
        self._tx.setdefault(connection, deque()).append(word)
        self.router.wake()

    def backlog(self, connection: str) -> int:
        """Words queued at the tile but not yet injected."""
        queue = self._tx.get(connection)
        return len(queue) if queue is not None else 0

    def _pop_tx(self, connection: str) -> Optional[int]:
        queue = self._tx.get(connection)
        if queue:
            return queue.popleft()
        return None

    def _has_backlog(self) -> bool:
        return any(self._tx.values())

    # -- receiving (driven by the router) ------------------------------------------------

    def _deliver(self, connection: str, word: int) -> None:
        self.received.setdefault(connection, []).append(word)

    def words_received(self, connection: str) -> int:
        """Words delivered to this tile on *connection*."""
        return len(self.received.get(connection, ()))

    def forget(self, connection: str) -> None:
        """Drop one departed connection's queued and delivered words."""
        self._tx.pop(connection, None)
        self.received.pop(connection, None)

    def reset(self) -> None:
        """Drop all queued and received data."""
        self._tx.clear()
        self.received.clear()


class SlotTableRouter(ClockedComponent):
    """Cycle-driven model of an Æthereal-style slot-table router.

    Per output port the router holds a revolving table of ``slots`` entries;
    entry ``cycle % slots`` names the input port whose word is latched into
    that output's register at the clock edge (and the connection it belongs
    to, so tile ingress/egress can be demultiplexed).  One register stage per
    hop gives the one-slot-per-hop alignment that
    :class:`repro.noc.slot_table.SlotTableAllocator` schedules around.
    """

    NUM_PORTS = 5

    def __init__(
        self,
        name: str,
        slots: int = 16,
        data_width: int = 16,
        position: Tuple[int, int] = (0, 0),
        tech: Technology = TSMC_130NM_LVHP,
    ) -> None:
        super().__init__(name)
        if slots < 1:
            raise ValueError("slot table needs at least one slot")
        self.slots = slots
        self.data_width = data_width
        self._mask = bit_mask(data_width)
        self.position = position
        self.tech = tech

        self.activity = ActivityCounters(name)
        self.area_model = AetherealRouterArea(tech)

        #: Slot tables: per output port, ``slots`` entries of
        #: ``(in_port, connection)`` or ``None``.
        self._table: List[List[Optional[Tuple[Port, str]]]] = [
            [None] * slots for _ in range(self.NUM_PORTS)
        ]
        #: Registered output word per port (``None`` = idle).
        self._out_reg: List[Optional[int]] = [None] * self.NUM_PORTS
        #: Previous payload per output register, for toggle counting
        #: (idle counts as the all-zero pattern).
        self._out_prev: List[int] = [0] * self.NUM_PORTS
        #: Input words sampled during the evaluate phase.
        self._sampled: List[Optional[int]] = [None] * self.NUM_PORTS

        self._rx_links: Dict[Port, Optional[TdmaLink]] = {p: None for p in NEIGHBOR_PORTS}
        self._tx_links: Dict[Port, Optional[TdmaLink]] = {p: None for p in NEIGHBOR_PORTS}
        self._rx_by_port: List[Optional[TdmaLink]] = [None] * self.NUM_PORTS
        self._tx_by_port: List[Optional[TdmaLink]] = [None] * self.NUM_PORTS

        self.tile = TdmaTileInterface(self)

        # Constant per-cycle clocked bits: the slot counter plus one
        # registered word (+ valid bit) per output port.
        self._idle_clock_bits = (slots - 1).bit_length() + self.NUM_PORTS * (data_width + 1)

    # -- wiring -------------------------------------------------------------------

    def attach_link(self, port: Port, rx_link: Optional[TdmaLink], tx_link: Optional[TdmaLink]) -> None:
        """Attach the incoming and outgoing word wires of a neighbour port."""
        port = Port(port)
        if port not in NEIGHBOR_PORTS:
            raise ConfigurationError("links can only be attached to neighbour ports")
        for link in (rx_link, tx_link):
            if link is not None and link.data_width != self.data_width:
                raise ConfigurationError(
                    f"link {link.name!r} is {link.data_width} bits wide, router "
                    f"{self.name!r} expects {self.data_width}"
                )
        self._rx_links[port] = rx_link
        self._tx_links[port] = tx_link
        self._rx_by_port[port] = rx_link
        self._tx_by_port[port] = tx_link
        if rx_link is not None:
            # A word arriving here must wake a sleeping router.
            rx_link.watch_forward(self.wake)
        self.wake()

    def rx_link(self, port: Port) -> Optional[TdmaLink]:
        """Incoming word wire at *port* (``None`` at a fabric edge)."""
        return self._rx_links[Port(port)]

    def tx_link(self, port: Port) -> Optional[TdmaLink]:
        """Outgoing word wire at *port* (``None`` at a fabric edge)."""
        return self._tx_links[Port(port)]

    # -- slot-table configuration ----------------------------------------------------

    def program(self, out_port: Port, slot: int, in_port: Port, connection: str) -> None:
        """Write one slot-table entry: at *slot*, *out_port* latches *in_port*."""
        out_port, in_port = Port(out_port), Port(in_port)
        self._check_slot(slot)
        entry = self._table[out_port][slot]
        if entry is not None:
            raise ConfigurationError(
                f"slot {slot} of port {out_port.name} on {self.name!r} is already "
                f"owned by connection {entry[1]!r}"
            )
        self._table[out_port][slot] = (in_port, connection)
        self.activity.add(ActivityKeys.CONFIG_WRITES, 1)
        self.wake()

    def clear(self, out_port: Port, slot: int) -> None:
        """Erase the slot-table entry at (*out_port*, *slot*)."""
        out_port = Port(out_port)
        self._check_slot(slot)
        self._table[out_port][slot] = None
        self.activity.add(ActivityKeys.CONFIG_WRITES, 1)
        self.wake()

    def table_entry(self, out_port: Port, slot: int) -> Optional[Tuple[Port, str]]:
        """The ``(in_port, connection)`` entry at (*out_port*, *slot*), if any."""
        self._check_slot(slot)
        return self._table[Port(out_port)][slot]

    def occupied_slots(self) -> int:
        """Total number of programmed slot-table entries."""
        return sum(1 for table in self._table for entry in table if entry is not None)

    def _check_slot(self, slot: int) -> None:
        if not 0 <= slot < self.slots:
            raise ConfigurationError(f"slot {slot} out of range 0..{self.slots - 1}")

    # -- simulation ---------------------------------------------------------------------

    supports_quiescence = True

    def evaluate(self, cycle: int) -> None:
        # Sample the committed word on every incoming wire; tile-port input
        # is pulled from the connection queues at the clock edge instead.
        sampled = self._sampled
        for port in NEIGHBOR_PORTS:
            rx = self._rx_by_port[port]
            sampled[port] = rx.forward if rx is not None else None

    def commit(self, cycle: int) -> None:
        activity = self.activity
        slot = cycle % self.slots
        data_width = self.data_width

        for out_port in range(self.NUM_PORTS):
            entry = self._table[out_port][slot]
            word: Optional[int] = None
            connection = ""
            if entry is not None:
                in_port, connection = entry
                if in_port == Port.TILE:
                    word = self.tile._pop_tx(connection)
                    if word is not None:
                        activity.add(ActivityKeys.WORDS_INJECTED, 1)
                else:
                    word = self._sampled[in_port]

            payload = word if word is not None else 0
            previous = self._out_prev[out_port]
            if payload != previous:
                toggles = toggle_count(previous, payload, data_width)
                activity.add(ActivityKeys.REG_TOGGLE_BITS, toggles)
                if out_port != Port.TILE:
                    activity.add(ActivityKeys.LINK_TOGGLE_BITS, toggles)
                self._out_prev[out_port] = payload
            self._out_reg[out_port] = word

            if out_port == Port.TILE:
                if word is not None:
                    self.tile._deliver(connection, word)
                    activity.add(ActivityKeys.WORDS_DELIVERED, 1)
            else:
                tx = self._tx_by_port[out_port]
                if tx is not None:
                    tx.drive(word)

        activity.add(ActivityKeys.REG_CLOCKED_BITS, self._idle_clock_bits)
        activity.cycles = cycle + 1

    def quiescent(self) -> bool:
        """True when another cycle with unchanged inputs would be an idle tick.

        With empty connection queues, idle wires in both directions and idle
        output registers, every slot — whatever the cycle count modulo the
        table size — latches "no word", so the only per-cycle effect is the
        constant clocked-bits contribution that :meth:`idle_tick` bulk-applies.
        The *outgoing* wires must be idle because a just-driven word is a
        transient: the next commit replaces it with ``None``, and sleeping
        before that would leave it on the wire for the downstream router.
        """
        if self.tile._has_backlog():
            return False
        return self._datapath_idle()

    def _datapath_idle(self) -> bool:
        """True when wires and output registers hold no word anywhere."""
        for port in NEIGHBOR_PORTS:
            rx = self._rx_by_port[port]
            if rx is not None and rx.forward is not None:
                return False
            tx = self._tx_by_port[port]
            if tx is not None and tx.forward is not None:
                return False
        for word in self._out_reg:
            if word is not None:
                return False
        return True

    # -- timed protocol ------------------------------------------------------

    supports_timed_wake = True

    def next_event_cycle(self, cycle: int) -> Optional[int]:
        """First cycle whose slot can latch a word, given unchanged inputs.

        With words anywhere in the datapath the router is dense (it must run
        every cycle).  With an idle datapath but backlog queued at the tile,
        the only future work is injecting a queued word when the revolving
        table next reaches a ``TILE`` entry of a backlogged connection — a
        pure function of the cycle count, so the kernel can leap straight to
        that slot.  No backlog at all means no self-generated events.
        """
        if not self._datapath_idle():
            return cycle
        if not self.tile._has_backlog():
            return None
        table = self._table
        slots = self.slots
        backlog = self.tile.backlog
        for offset in range(slots):
            slot = (cycle + offset) % slots
            for out_port in range(self.NUM_PORTS):
                entry = table[out_port][slot]
                if entry is not None and entry[0] == Port.TILE and backlog(entry[1]):
                    return cycle + offset
        return None

    def idle_tick(self, start_cycle: int, cycles: int) -> None:
        """Apply *cycles* of the constant idle activity contribution."""
        self.activity.add(ActivityKeys.REG_CLOCKED_BITS, self._idle_clock_bits * cycles)
        self.activity.cycles = start_cycle + cycles

    def reset(self) -> None:
        self.tile.reset()
        self.activity.reset()
        for port in range(self.NUM_PORTS):
            self._out_reg[port] = None
            self._out_prev[port] = 0
            self._sampled[port] = None
        # Drive the attached wires back to idle (slot tables survive a reset,
        # like the circuit-switched configuration memory).
        for tx in self._tx_by_port:
            if tx is not None:
                tx.drive(None)

    # -- reporting -----------------------------------------------------------------------

    def power(self, frequency_hz: float, cycles: int | None = None) -> PowerBreakdown:
        """Estimate the router's average power over the recorded activity."""
        model = PowerModel(self.tech)
        return model.estimate(self.area_model, self.activity, frequency_hz, cycles)

    def max_frequency_mhz(self) -> float:
        """Published maximum clock frequency (Table 4 quotes 500 MHz)."""
        return AETHEREAL.max_frequency_mhz

    @property
    def total_area_mm2(self) -> float:
        """Published silicon area (Table 4 quotes 0.175 mm² after layout)."""
        return self.area_model.total_mm2


class GtStreamDriver(ClockedComponent):
    """Feeds a paced word stream into a slot-table router's tile interface.

    The driver keeps the connection's injection queue topped up at ``load`` ×
    the connection's guaranteed rate (one word per owned slot per table
    revolution); words offered while the queue is full are dropped and
    counted, so a mis-paced stream shows up in the statistics instead of
    accumulating unbounded backlog.
    """

    def __init__(
        self,
        name: str,
        router: SlotTableRouter,
        connection: str,
        word_source: WordSource,
        load: float = 1.0,
        cycles_per_word: int = 1,
        queue_limit: int = 8,
    ) -> None:
        super().__init__(name)
        self.router = router
        self.connection = connection
        self.word_source = word_source
        self.queue_limit = queue_limit
        self._pacer = LoadPacer(load, cycles_per_word)
        self.words_offered = 0
        self.words_sent = 0
        self.words_dropped = 0

    def evaluate(self, cycle: int) -> None:
        if not self._pacer.should_emit():
            return
        self.words_offered += 1
        if self.router.tile.backlog(self.connection) < self.queue_limit:
            self.router.tile.send(self.connection, self.word_source())
            self.words_sent += 1
        else:
            self.words_dropped += 1

    def commit(self, cycle: int) -> None:  # the router itself owns the clocked state
        pass

    # -- timed protocol: the pacer is the driver's only per-cycle state ------

    supports_timed_wake = True

    def next_event_cycle(self, cycle: int) -> Optional[int]:
        return self._pacer.next_emit_cycle(cycle)

    def idle_tick(self, start_cycle: int, cycles: int) -> None:
        self._pacer.skip(cycles)

    def reset(self) -> None:
        self.words_offered = 0
        self.words_sent = 0
        self.words_dropped = 0


class GtLinkStreamDriver(ClockedComponent):
    """Emulates an upstream slot-table router driving one incoming wire.

    The single-router power scenarios (Table 3) feed streams in through
    neighbour ports; this driver places a word on the wire exactly when the
    router under test will latch it — i.e. during the cycle *before* each of
    the stream's owned slots comes around.
    """

    def __init__(
        self,
        name: str,
        link: TdmaLink,
        slots: int,
        inject_slots: frozenset,
        word_source: WordSource,
        load: float = 1.0,
    ) -> None:
        super().__init__(name)
        if not inject_slots:
            raise ValueError("a link stream needs at least one slot")
        self.link = link
        self.slots = slots
        self.inject_slots = frozenset(inject_slots)
        self.word_source = word_source
        self._pacer = LoadPacer(load, 1)  # gated once per slot opportunity
        #: Cycle residues (mod slots) at which this driver commits into an
        #: owned slot: cycle c feeds slot (c+1) % slots.
        self._inject_residues = sorted((s - 1) % slots for s in self.inject_slots)
        self.words_sent = 0

    def evaluate(self, cycle: int) -> None:  # the wire is driven at the clock edge
        pass

    def commit(self, cycle: int) -> None:
        # A word committed now is sampled during cycle + 1 and latched at the
        # downstream router's slot (cycle + 1) % S.
        target_slot = (cycle + 1) % self.slots
        if target_slot in self.inject_slots and self._pacer.should_emit():
            self.link.drive(self.word_source())
            self.words_sent += 1
        else:
            self.link.drive(None)

    # -- timed protocol ------------------------------------------------------
    # The pacer is consulted once per owned slot opportunity (never on other
    # cycles), so its credit counts *opportunities*: the next emission falls
    # on the k-th future opportunity cycle, k = cycles_until_emit(), and a
    # leaped window fast-forwards the pacer by the number of opportunity
    # cycles it contains.  The cycle after driving a word stays dense (the
    # word must be replaced by idle).

    supports_timed_wake = True

    def _opportunities_in(self, start_cycle: int, cycles: int) -> int:
        """Owned slot opportunities in the window [start_cycle, start_cycle + cycles)."""
        revolutions, remainder = divmod(cycles, self.slots)
        count = revolutions * len(self._inject_residues)
        for residue in self._inject_residues:
            if (residue - start_cycle) % self.slots < remainder:
                count += 1
        return count

    def next_event_cycle(self, cycle: int) -> Optional[int]:
        if self.link.forward is not None:
            return cycle
        emit_calls = self._pacer.cycles_until_emit()
        if emit_calls is None:
            return None  # zero load: every opportunity drives idle onto idle
        offsets = sorted(
            (residue - cycle) % self.slots for residue in self._inject_residues
        )
        revolutions, index = divmod(emit_calls - 1, len(offsets))
        return cycle + offsets[index] + revolutions * self.slots

    def idle_tick(self, start_cycle: int, cycles: int) -> None:
        self._pacer.skip(self._opportunities_in(start_cycle, cycles))

    def reset(self) -> None:
        self.words_sent = 0


class GtLinkStreamConsumer(ClockedComponent):
    """Emulates the downstream router behind one outgoing wire.

    A word latched at slot ``s`` sits on the wire during the following cycle,
    so the slot that owns a sampled word is ``(cycle - 1) % S``; the consumer
    attributes every word to the stream owning that slot.
    """

    def __init__(self, name: str, link: TdmaLink, slots: int) -> None:
        super().__init__(name)
        self.link = link
        # Arriving words must wake a parked consumer (routers only watch
        # their receive wires, so an outgoing wire's dirty-bit is free).
        link.forward_dirty.add_listener(self.wake)
        self.slots = slots
        #: Slot index -> stream id owning it (filled by the test bench).
        self.slot_owner: Dict[int, int] = {}
        self.received: Dict[int, int] = {}
        self._sampled: Optional[int] = None
        self._sampled_slot = 0

    def claim(self, stream_id: int, slots: frozenset) -> None:
        """Record that *stream_id* owns the given latch slots."""
        for slot in slots:
            self.slot_owner[slot] = stream_id

    def evaluate(self, cycle: int) -> None:
        self._sampled = self.link.forward
        self._sampled_slot = (cycle - 1) % self.slots

    def commit(self, cycle: int) -> None:
        if self._sampled is not None:
            owner = self.slot_owner.get(self._sampled_slot, -1)
            self.received[owner] = self.received.get(owner, 0) + 1
            self._sampled = None

    # -- timed protocol: a pure sink never generates events of its own -------

    supports_timed_wake = True

    def next_event_cycle(self, cycle: int) -> Optional[int]:
        if self.link.forward is not None or self._sampled is not None:
            return cycle
        return None

    def idle_tick(self, start_cycle: int, cycles: int) -> None:
        pass

    def words_received_for(self, stream_id: int) -> int:
        """Words attributed to *stream_id*."""
        return self.received.get(stream_id, 0)

    def reset(self) -> None:
        self.received.clear()
        self._sampled = None


class GtStreamEndpoints:
    """Book-keeping for one word stream carried by the TDMA network."""

    def __init__(
        self,
        name: str,
        source: Optional[GtStreamDriver],
        sink: Optional[TdmaTileInterface],
        allocation: SlotAllocation,
    ) -> None:
        self.name = name
        self.source = source
        self.sink = sink
        self.allocation = allocation

    @property
    def words_sent(self) -> int:
        """Words accepted into the source tile's injection queue."""
        return self.source.words_sent if self.source is not None else 0

    @property
    def words_received(self) -> int:
        """Words delivered at the destination tile."""
        if self.sink is None:
            return 0
        return self.sink.words_received(self.allocation.channel_name)


@register_network_kind("gt", "aethereal", "tdma", "time_division")
class TimeDivisionNoC(NocBase):
    """A complete Æthereal-style TDMA guaranteed-throughput network.

    ``schedule="vector"`` is accepted but behaves exactly like
    ``schedule="event"``: the slot-table router's per-slot table walk is
    control flow, not a static register gather, so the columnar fast path
    (:mod:`repro.sim.vector`) does not register a plane for GT fabrics.
    """

    kind = "time_division_gt"
    activity_name = "gt_network"
    performs_admission = True
    fault_drop_unit = "word"
    #: One slot-table write per router hop: 3-bit output port + 8-bit slot
    #: index (Æthereal publishes 256-slot tables) + 3-bit input port.  Wider
    #: than the 10-bit lane command *and* there is one per owned slot per
    #: revolution — the configuration-effort contrast of Section 4.
    config_command_bits = 14

    def __init__(
        self,
        topology: Topology,
        frequency_hz: float = 25e6,
        slots: int = 16,
        data_width: int = 16,
        tech: Technology = TSMC_130NM_LVHP,
        schedule: str = "auto",
        region=None,
    ) -> None:
        self.slots = slots
        super().__init__(
            topology,
            frequency_hz=frequency_hz,
            data_width=data_width,
            tech=tech,
            schedule=schedule,
            region=region,
        )

    # -- construction hooks -----------------------------------------------------------

    def _build_router(self, position: Position) -> SlotTableRouter:
        return SlotTableRouter(
            f"gt_{self.topology.router_name(position)}",
            slots=self.slots,
            data_width=self.data_width,
            position=position,
            tech=self.tech,
        )

    def _build_link(self, src: Position, dst: Position) -> TdmaLink:
        return TdmaLink(
            f"gt_{src[0]}_{src[1]}__{dst[0]}_{dst[1]}", self.data_width
        )

    def _stream_received(self, endpoints: GtStreamEndpoints) -> int:
        return endpoints.words_received

    def _stream_drained(self, endpoints: GtStreamEndpoints) -> bool:
        # Exact conservation for a halted TDMA connection: every word the
        # injection queue accepted is either waiting for an owned slot,
        # riding a slot train, or delivered at the destination tile —
        # equality means the last train has arrived.  Words a dead wire
        # swallowed never arrive, so a broken path falls back to the
        # stability drain.
        return endpoints.words_received == endpoints.words_sent

    def _new_admission_controller(self) -> SlotTableAllocator:
        return SlotTableAllocator(self.topology, self.slots, self.data_width)

    @classmethod
    def default_admission_controller(cls, topology: Topology) -> SlotTableAllocator:
        return SlotTableAllocator(topology)

    # -- slot-table configuration ------------------------------------------------------------

    def apply_circuit(self, circuit: SlotCircuit) -> None:
        """Write one slot train into the routers along its route."""
        for hop in circuit.hops:
            if self.is_local(hop.position):
                self.router_at(hop.position).program(
                    hop.out_port, hop.slot, hop.in_port, circuit.channel_name
                )

    def remove_circuit(self, circuit: SlotCircuit) -> None:
        """Erase one slot train from the routers again."""
        for hop in circuit.hops:
            if self.is_local(hop.position):
                self.router_at(hop.position).clear(hop.out_port, hop.slot)

    def apply_allocation(self, allocation: SlotAllocation) -> None:
        """Program every slot train of a channel allocation."""
        for circuit in allocation.circuits:
            self.apply_circuit(circuit)

    def remove_allocation(self, allocation: SlotAllocation) -> None:
        """Tear down every slot train of a channel allocation."""
        for circuit in allocation.circuits:
            self.remove_circuit(circuit)

    def occupied_slots(self) -> int:
        """Total programmed slot-table entries across all routers."""
        return sum(router.occupied_slots() for router in self.routers.values())

    # -- traffic -----------------------------------------------------------------------------

    def add_stream(
        self,
        name: str,
        allocation: SlotAllocation,
        word_source: WordSource,
        load: float = 1.0,
    ) -> GtStreamEndpoints:
        """Attach a paced word stream to an allocated channel.

        Tile-local channels create no network endpoints; their traffic never
        enters the NoC.
        """
        if name in self.streams:
            raise ConfigurationError(f"stream {name!r} already exists")
        if allocation.is_local or not allocation.circuits:
            endpoints = GtStreamEndpoints(name, None, None, allocation)
            self.streams[name] = endpoints
            return endpoints
        cycles_per_word = max(1, round(self.slots / allocation.slots_used))
        # The TDMA driver pulls conditionally (a full injection queue drops
        # the offer), so the remote model needs the queue bound and the
        # slot-table drain schedule: one pop per programmed injection slot
        # (the first hop of each slot train) per table revolution.
        word_source = self._register_stream_source(
            name,
            word_source,
            self.is_local(allocation.src),
            lambda: GtPullModel(
                load,
                cycles_per_word,
                self.slots,
                [circuit.hops[0].slot for circuit in allocation.circuits],
                8,  # GtStreamDriver's queue_limit default
                self.kernel.cycle,
            ),
        )
        driver = sink = None
        if self.is_local(allocation.src):
            driver = GtStreamDriver(
                f"{name}_src",
                self.router_at(allocation.src),
                allocation.channel_name,
                word_source,
                load,
                cycles_per_word=cycles_per_word,
            )
            self.kernel.add(driver)
        if self.is_local(allocation.dst):
            sink = self.router_at(allocation.dst).tile
        endpoints = GtStreamEndpoints(name, driver, sink, allocation)
        self.streams[name] = endpoints
        return endpoints

    def _detach_stream_components(self, endpoints: GtStreamEndpoints) -> None:
        self._remove_component(endpoints.source)
        if endpoints.sink is not None:
            # Drop the departed connection's queued and delivered words so a
            # later same-name admission starts from a clean tile interface,
            # like the other kinds' fresh endpoint objects do.
            endpoints.sink.forget(endpoints.allocation.channel_name)

    def attach_channel(
        self,
        name: str,
        src: Position,
        dst: Position,
        bandwidth_mbps: float,
        word_source: WordSource,
        load: float = 1.0,
        allocation: Optional[SlotAllocation] = None,
    ) -> GtStreamEndpoints:
        if allocation is None:
            allocation = self.admission.allocate(
                name, src, dst, bandwidth_mbps, self.frequency_hz
            )
            self.apply_allocation(allocation)
        # Pace the stream at the channel's requested bandwidth (× load), not
        # at the allocated slots' capacity, so every network kind offers the
        # identical word stream for the same channel.
        capacity = allocation.slots_used * self.admission.slot_capacity_mbps(self.frequency_hz)
        effective_load = min(1.0, load * bandwidth_mbps / capacity) if capacity else load
        return self.add_stream(name, allocation, word_source, effective_load)
