"""TDMA slot-table admission for the Æthereal-style guaranteed-throughput NoC.

The Philips Æthereal router (Dielissen et al.; the paper's Table 4 reference)
multiplexes every link in *time* instead of in *space*: a revolving table of
``slots_per_link`` slots divides each link into fixed time slices, and a
guaranteed-throughput connection owns one slot per table revolution on every
link of its route.  Because a word latched at slot *s* of one router appears
on the wire one cycle later, the reservation must be **aligned**: a circuit
that leaves its source router at slot ``s`` needs slot ``(s + i) % S`` on the
*i*-th link of the route, which is the global scheduling problem the paper
contrasts with lane-division multiplexing (Section 4 — lanes only need to be
*free*, slots also have to *line up*).

:class:`SlotTableAllocator` implements that admission rule on the shared
:class:`repro.noc.admission.AdmissionController` machinery: the per-link
resource pools hold free slot indices, the route search filters links with
enough free slots, and the circuit reservation scans start slots until the
whole route (tile ingress, every link, tile egress) is contention-free.  The
resulting :class:`SlotAllocation` is what
:class:`repro.noc.gt_network.TimeDivisionNoC` writes into its routers' slot
tables.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.common import AllocationError, Port, opposite_port
from repro.noc.admission import AdmissionController
from repro.noc.topology import Position, Topology

__all__ = ["SlotHop", "SlotCircuit", "SlotAllocation", "SlotTableAllocator"]


@dataclass(frozen=True)
class SlotHop:
    """How a slot circuit traverses one router.

    ``slot`` is the table index at which this router latches the word into
    the output register of ``out_port`` — i.e. the slot the circuit owns on
    the outgoing link (or at the tile egress for the final hop).
    """

    position: Position
    in_port: Port
    out_port: Port
    slot: int


@dataclass(frozen=True)
class SlotCircuit:
    """One slot train: one word per table revolution along a fixed route."""

    channel_name: str
    index: int
    src: Position
    dst: Position
    route: Tuple[Position, ...]
    hops: Tuple[SlotHop, ...]

    @property
    def source_slot(self) -> int:
        """Slot at which the source router pulls the word from its tile."""
        return self.hops[0].slot

    @property
    def delivery_slot(self) -> int:
        """Slot at which the destination router delivers the word to its tile."""
        return self.hops[-1].slot

    @property
    def hop_count(self) -> int:
        """Number of routers the circuit passes through."""
        return len(self.hops)


@dataclass
class SlotAllocation:
    """All slot trains allocated for one application channel."""

    channel_name: str
    src: Position
    dst: Position
    bandwidth_mbps: float
    circuits: List[SlotCircuit] = field(default_factory=list)

    @property
    def is_local(self) -> bool:
        """True when source and destination share a tile (no network resources)."""
        return self.src == self.dst

    @property
    def slots_used(self) -> int:
        """Number of slot trains (slots per table revolution) allocated."""
        return len(self.circuits)

    @property
    def hop_count(self) -> int:
        """Router hops of the (common) route, 0 for tile-local channels."""
        return self.circuits[0].hop_count if self.circuits else 0


class SlotTableAllocator(AdmissionController):
    """Contention-free TDMA slot scheduling on any topology.

    Parameters
    ----------
    topology:
        The router fabric to admit connections on.
    slots_per_link:
        Size ``S`` of the revolving slot table (Æthereal publishes 256; the
        cycle-driven simulation defaults to a smaller table so a revolution
        fits in a few tens of cycles).
    data_width:
        Payload bits carried per slot (one word per owned slot per
        revolution).
    """

    unit_name = "slot"

    def __init__(
        self,
        topology: Topology,
        slots_per_link: int = 16,
        data_width: int = 16,
    ) -> None:
        if slots_per_link < 1:
            raise ValueError("slots_per_link must be positive")
        super().__init__(topology, slots_per_link)
        self.slots_per_link = slots_per_link
        self.data_width = data_width

    # -- capacity arithmetic -----------------------------------------------------------

    def slot_capacity_mbps(self, frequency_hz: float) -> float:
        """Payload bandwidth of one slot per revolution at the network clock.

        One owned slot carries ``data_width`` bits every ``slots_per_link``
        cycles (e.g. 16 bits / 16 slots at 100 MHz = 100 Mbit/s).
        """
        if frequency_hz <= 0:
            raise ValueError("frequency must be positive")
        return self.data_width * frequency_hz / self.slots_per_link / 1e6

    def slots_required(self, bandwidth_mbps: float, frequency_hz: float) -> int:
        """Slots per revolution needed to guarantee *bandwidth_mbps*."""
        if bandwidth_mbps < 0:
            raise ValueError("bandwidth must be non-negative")
        if bandwidth_mbps == 0:
            return 1
        return max(1, math.ceil(bandwidth_mbps / self.slot_capacity_mbps(frequency_hz)))

    units_required = slots_required
    unit_capacity_mbps = slot_capacity_mbps

    # -- queries ---------------------------------------------------------------------------

    def free_slots(self, src: Position, dst: Position) -> int:
        """Number of free slots on the directed link from *src* to *dst*."""
        return self.free_units(src, dst)

    # -- allocation --------------------------------------------------------------------------

    def _new_allocation(
        self, channel_name: str, src: Position, dst: Position, bandwidth_mbps: float
    ) -> SlotAllocation:
        return SlotAllocation(channel_name, src, dst, bandwidth_mbps)

    def _schedule_start_slot(self, route: List[Position]) -> Optional[int]:
        """Smallest start slot whose aligned schedule is free on the whole route.

        A train starting at slot ``s`` occupies the tile ingress at ``s``,
        link *i* of the route at ``(s + i) % S`` and the tile egress at
        ``(s + hops - 1) % S``; all of those must be free simultaneously.
        """
        slots = self.slots_per_link
        src, dst = route[0], route[-1]
        hops = len(route)
        for start in range(slots):
            if start not in self._free_tile_tx[src]:
                continue
            if (start + hops - 1) % slots not in self._free_tile_rx[dst]:
                continue
            aligned = True
            for i, (a, b) in enumerate(zip(route, route[1:])):
                if (start + i) % slots not in self._free_link_units[(a, b)]:
                    aligned = False
                    break
            if aligned:
                return start
        return None

    def _reserve_train(self, channel_name: str, index: int, route: List[Position], start: int) -> SlotCircuit:
        """Take the aligned slots of one train out of the pools and build its hops."""
        slots = self.slots_per_link
        src, dst = route[0], route[-1]
        hops_count = len(route)
        self._free_tile_tx[src].discard(start)
        self._free_tile_rx[dst].discard((start + hops_count - 1) % slots)
        for i, (a, b) in enumerate(zip(route, route[1:])):
            self._free_link_units[(a, b)].discard((start + i) % slots)

        hops: List[SlotHop] = []
        for hop_index, position in enumerate(route):
            if hop_index == 0:
                in_port = Port.TILE
            else:
                previous = route[hop_index - 1]
                in_port = opposite_port(self.topology.port_towards(previous, position))
            if hop_index == hops_count - 1:
                out_port = Port.TILE
            else:
                following = route[hop_index + 1]
                out_port = self.topology.port_towards(position, following)
            hops.append(SlotHop(position, in_port, out_port, (start + hop_index) % slots))

        return SlotCircuit(
            channel_name=channel_name,
            index=index,
            src=src,
            dst=dst,
            route=tuple(route),
            hops=tuple(hops),
        )

    def _allocate_circuits(
        self, channel_name: str, route: List[Position], units_needed: int
    ) -> List[SlotCircuit]:
        circuits: List[SlotCircuit] = []
        try:
            for index in range(units_needed):
                start = self._schedule_start_slot(route)
                if start is None:
                    raise AllocationError(
                        f"no contention-free slot schedule for {channel_name!r} on route "
                        f"{route} ({units_needed} slot(s)/revolution needed, table size "
                        f"{self.slots_per_link})"
                    )
                circuits.append(self._reserve_train(channel_name, index, route, start))
        except AllocationError:
            # Roll back the trains reserved so far.
            for circuit in circuits:
                self._release_circuit(circuit)
            raise
        return circuits

    def _release_circuit(self, circuit: SlotCircuit) -> None:
        self._free_tile_tx[circuit.src].add(circuit.source_slot)
        self._free_tile_rx[circuit.dst].add(circuit.delivery_slot)
        for (a, b), hop in zip(zip(circuit.route, circuit.route[1:]), circuit.hops):
            self._free_link_units[(a, b)].add(hop.slot)
