"""Network-agnostic admission control: route search over per-link resource pools.

Admitting a guaranteed-throughput channel always has the same shape,
whatever the network kind multiplexes its links with:

1. translate the channel's bandwidth requirement into a number of discrete
   per-link resource *units*,
2. find a route on which every directed link still has that many free units,
3. reserve one unit set per link (plus the tile ingress/egress resources at
   the endpoints) transactionally, rolling back on failure,
4. remember the reservation so it can be torn down again.

What a *unit* is differs per network: the paper's circuit-switched fabric
divides every link into physically separate **lanes**
(:class:`repro.noc.path_allocation.LaneAllocator`), while an Æthereal-style
guaranteed-throughput fabric divides every link into **TDMA slots** of a
revolving slot table (:class:`repro.noc.slot_table.SlotTableAllocator`), whose
reservations must additionally be *aligned* along the route.  This module
provides the shared machinery — the pools, the filtered shortest-path search,
the allocation registry, utilization reporting and transactional release —
so a concrete admission controller only implements the unit arithmetic and
the per-circuit reservation rule.
"""

from __future__ import annotations

import abc
from typing import Any, Dict, Iterable, List, Set, Tuple

import networkx as nx

from repro.common import AllocationError
from repro.noc.topology import Position, Topology

__all__ = ["AdmissionController"]


class AdmissionController(abc.ABC):
    """Tracks free per-link resource units and allocates channels on any topology.

    The controller works purely on the topology's directed-link graph, so the
    same code admits channels over the paper's mesh, across a torus wraparound
    link, or around the missing links of a degraded mesh.  Subclasses define

    * :attr:`unit_name` — what one resource unit is called in messages,
    * :meth:`units_required` — bandwidth → number of units,
    * :meth:`_new_allocation` — the (empty) allocation record of one channel,
    * :meth:`_allocate_circuits` — reserve the units of one channel along a
      route (transactional: must roll back its own reservations on failure),
    * :meth:`_release_circuit` — return one circuit's units to the pools.
    """

    #: Human-readable name of one resource unit (``"lane"``, ``"slot"``).
    unit_name: str = "unit"

    def __init__(self, topology: Topology, units_per_link: int) -> None:
        if units_per_link < 1:
            raise ValueError("units_per_link must be positive")
        self.topology = topology
        #: Backwards-compatible alias; the attribute predates non-mesh fabrics.
        self.mesh = topology
        self.units_per_link = units_per_link
        all_units = set(range(units_per_link))
        #: Free units of every directed router-to-router link.
        self._free_link_units: Dict[Tuple[Position, Position], Set[int]] = {
            link: set(all_units) for link in topology.directed_links()
        }
        #: Free tile-ingress units (tile → network) per router.
        self._free_tile_tx: Dict[Position, Set[int]] = {
            pos: set(all_units) for pos in topology.positions()
        }
        #: Free tile-egress units (network → tile) per router.
        self._free_tile_rx: Dict[Position, Set[int]] = {
            pos: set(all_units) for pos in topology.positions()
        }
        self._allocations: Dict[str, Any] = {}
        #: Directed links invalidated by run-time faults.  The pools behind
        #: them stay alive — circuits allocated before the fault must still
        #: release their units without leaking — but the route search and
        #: the free-unit queries treat the links as having no capacity.
        self._dead_links: Set[Tuple[Position, Position]] = set()
        #: Router positions invalidated by run-time faults.
        self._dead_routers: Set[Position] = set()

    # -- fault invalidation ------------------------------------------------------------

    def invalidate_resources(
        self,
        dead_links: Iterable[Tuple[Position, Position]] = (),
        dead_routers: Iterable[Position] = (),
    ) -> None:
        """Take dead links/routers out of admission without touching held units.

        Links are invalidated in both directions; a dead router invalidates
        every link incident to it.  Existing allocations over the dead
        resources stay registered (their owner releases them during fault
        recovery, returning every unit to the — now unroutable — pools, so
        :meth:`link_utilization` still drops back to zero).
        """
        for a, b in dead_links:
            self._dead_links.add((a, b))
            self._dead_links.add((b, a))
        for position in dead_routers:
            self._dead_routers.add(position)
            for link in self._free_link_units:
                if position in link:
                    self._dead_links.add(link)

    @property
    def dead_links(self) -> Set[Tuple[Position, Position]]:
        """Directed links currently invalidated by faults (a copy)."""
        return set(self._dead_links)

    @property
    def dead_routers(self) -> Set[Position]:
        """Router positions currently invalidated by faults (a copy)."""
        return set(self._dead_routers)

    # -- capacity arithmetic -----------------------------------------------------------

    @abc.abstractmethod
    def unit_capacity_mbps(self, frequency_hz: float) -> float:
        """Payload bandwidth one resource unit guarantees at the network clock."""

    @abc.abstractmethod
    def units_required(self, bandwidth_mbps: float, frequency_hz: float) -> int:
        """Units needed to carry *bandwidth_mbps* at the network clock."""

    # -- queries ---------------------------------------------------------------------------

    def free_units(self, src: Position, dst: Position) -> int:
        """Number of free units on the directed link from *src* to *dst*.

        A link invalidated by a fault reports zero capacity even while its
        pool still holds (or is still owed) units.
        """
        try:
            units = self._free_link_units[(src, dst)]
        except KeyError:
            raise AllocationError(f"no link from {src} to {dst} in the topology") from None
        if (src, dst) in self._dead_links:
            return 0
        return len(units)

    def allocation(self, channel_name: str) -> Any:
        """The allocation previously made for *channel_name*."""
        try:
            return self._allocations[channel_name]
        except KeyError:
            raise AllocationError(f"no allocation for channel {channel_name!r}") from None

    @property
    def allocations(self) -> List[Any]:
        """All current allocations in insertion order."""
        return list(self._allocations.values())

    def link_utilization(self) -> float:
        """Fraction of all link units currently allocated."""
        total = len(self._free_link_units) * self.units_per_link
        free = sum(len(units) for units in self._free_link_units.values())
        return (total - free) / total if total else 0.0

    # -- route search ----------------------------------------------------------------------

    def _route(self, src: Position, dst: Position, units_needed: int) -> List[Position]:
        """Shortest path on which every link still has *units_needed* free units."""
        graph = nx.DiGraph()
        for position in self.topology.positions():
            if position not in self._dead_routers:
                graph.add_node(position)
        for (a, b), free in self._free_link_units.items():
            if (a, b) in self._dead_links:
                continue
            if a in self._dead_routers or b in self._dead_routers:
                continue
            if len(free) >= units_needed:
                graph.add_edge(a, b)
        try:
            return nx.shortest_path(graph, src, dst)
        except (nx.NetworkXNoPath, nx.NodeNotFound):
            raise AllocationError(
                f"no route with {units_needed} free {self.unit_name}(s) from {src} to {dst}"
            ) from None

    # -- allocation --------------------------------------------------------------------------

    @abc.abstractmethod
    def _new_allocation(
        self, channel_name: str, src: Position, dst: Position, bandwidth_mbps: float
    ) -> Any:
        """A fresh (circuit-less) allocation record for one channel."""

    @abc.abstractmethod
    def _allocate_circuits(
        self, channel_name: str, route: List[Position], units_needed: int
    ) -> List[Any]:
        """Reserve *units_needed* circuits along *route* (rolls back on failure)."""

    def allocate(
        self,
        channel_name: str,
        src: Position,
        dst: Position,
        bandwidth_mbps: float,
        frequency_hz: float,
    ) -> Any:
        """Allocate the circuits for one channel; raises :class:`AllocationError`.

        The allocation is transactional: if any resource along the chosen
        route is unavailable the partial reservation is rolled back.
        """
        if channel_name in self._allocations:
            raise AllocationError(f"channel {channel_name!r} is already allocated")
        for position in (src, dst):
            if not self.topology.contains(position):
                raise AllocationError(f"position {position} is outside the topology")
            if position in self._dead_routers:
                raise AllocationError(f"router at {position} is dead")

        allocation = self._new_allocation(channel_name, src, dst, bandwidth_mbps)
        if src == dst:
            # Tile-local channel: nothing to allocate on the network.
            self._allocations[channel_name] = allocation
            return allocation

        units_needed = self.units_required(bandwidth_mbps, frequency_hz)
        route = self._route(src, dst, units_needed)
        allocation.circuits = self._allocate_circuits(channel_name, route, units_needed)
        self._allocations[channel_name] = allocation
        return allocation

    # -- release -----------------------------------------------------------------------------

    @abc.abstractmethod
    def _release_circuit(self, circuit: Any) -> None:
        """Return every unit held by one circuit to the pools."""

    def release(self, channel_name: str) -> None:
        """Free every resource held by *channel_name*."""
        allocation = self.allocation(channel_name)
        for circuit in allocation.circuits:
            self._release_circuit(circuit)
        del self._allocations[channel_name]
