"""The Central Coordination Node (Section 1.1): run-time application lifecycle.

"The SoC system is organized as a centralized system: one node, called
Central Coordination Node (CCN), performs system coordination functions. …
The CCN performs the feasibility analysis, spatial mapping, process
allocation and configuration of the tiles and the NoC before the start of an
application."

The CCN implemented here runs exactly that admission pipeline — and it runs
it against *any* registered network kind (``"circuit"``/``"packet"``/
``"gt"`` plus every :func:`repro.noc.fabric.build_network` alias):

1. **feasibility analysis** — every guaranteed-throughput channel must fit in
   the per-link resource units (lanes or TDMA slots) available at the network
   clock; packet switching performs no admission and is feasible whenever the
   processes fit,
2. **spatial mapping** — :class:`repro.noc.mapping.SpatialMapper`,
3. **resource allocation** — any
   :class:`repro.noc.admission.AdmissionController`:
   :class:`repro.noc.path_allocation.LaneAllocator` for the paper's lane
   circuits, :class:`repro.noc.slot_table.SlotTableAllocator` for
   Æthereal-style aligned slot schedules,
4. **configuration** — one command per router hop of every circuit, sized by
   the network kind (10-bit lane commands vs. wider slot-table writes — the
   Section 4 contrast), transported over the best-effort network
   (:class:`repro.noc.be_network.BestEffortNetwork`) and, when a live
   :class:`repro.noc.fabric.NocBase` network is attached, written into the
   routers (crossbar configuration memories or revolving slot tables),
5. **traffic attach / release** — :meth:`CentralCoordinationNode
   .attach_traffic` registers the admitted channels' paced word streams on
   the live network, and :meth:`CentralCoordinationNode.release` tears
   streams, router configuration, resources and tiles down transactionally,
   so applications can arrive and depart mid-simulation.

Reconfiguration-cost provenance: the *number and size* of configuration
commands are derived from the simulated allocations; their transport time
uses the analytic best-effort network model (store-and-forward latency), not
a cycle-accurate BE simulation — exactly the quantity the paper budgets
("less than 1 ms over the BE network").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.apps.kpn import ProcessGraph, TrafficClass
from repro.common import AllocationError, ConfigurationError, FaultError, MappingError
from repro.noc.admission import AdmissionController
from repro.noc.be_network import BestEffortNetwork, ConfigurationDelivery
from repro.noc.fabric import NocBase, WordSource, resolve_network_kind
from repro.noc.mapping import Mapping, SpatialMapper
from repro.noc.tile import TileGrid
from repro.noc.topology import Position, Topology

__all__ = [
    "FeasibilityReport",
    "ApplicationAdmission",
    "FaultRecovery",
    "CentralCoordinationNode",
]


@dataclass
class FeasibilityReport:
    """Result of the CCN's pre-mapping feasibility analysis."""

    application: str
    feasible: bool
    #: Payload bandwidth one resource unit guarantees (``inf`` for kinds
    #: without admission: packet switching admits anything that maps).
    unit_capacity_mbps: float
    #: What one unit is called for this kind (``"lane"``, ``"slot"``).
    unit_name: str = "lane"
    channel_units: Dict[str, int] = field(default_factory=dict)
    problems: List[str] = field(default_factory=list)

    # -- backwards-compatible aliases (the report predates non-lane kinds) --

    @property
    def lane_capacity_mbps(self) -> float:
        """Alias of :attr:`unit_capacity_mbps`."""
        return self.unit_capacity_mbps

    @property
    def channel_lanes(self) -> Dict[str, int]:
        """Alias of :attr:`channel_units`."""
        return self.channel_units


@dataclass
class ApplicationAdmission:
    """Everything the CCN decided while admitting one application."""

    application: str
    mapping: Mapping
    #: Canonical kind of the fabric the application was admitted on.
    kind: str = "circuit_switched"
    #: Per-channel allocations (:class:`~repro.noc.path_allocation
    #: .CircuitAllocation` or :class:`~repro.noc.slot_table.SlotAllocation`);
    #: empty for kinds without admission.
    allocations: List[Any] = field(default_factory=list)
    configuration_commands: int = 0
    #: Bits of one configuration command for this kind (Section 4 contrast).
    command_bits: int = 0
    delivery: Optional[ConfigurationDelivery] = None
    best_effort_channels: List[str] = field(default_factory=list)
    #: Stream registry names created by :meth:`CentralCoordinationNode
    #: .attach_traffic` (empty while no traffic is attached).
    stream_names: List[str] = field(default_factory=list)
    #: The admitted process graph (needed to attach packet-switched traffic,
    #: which has no allocation records to recover channels from).
    graph: Optional[ProcessGraph] = field(default=None, repr=False)
    #: Traffic parameters recorded at :meth:`CentralCoordinationNode
    #: .attach_traffic` time, so fault recovery can re-attach a displaced
    #: application's streams with the identical word source and load.
    word_source: Optional[WordSource] = field(default=None, repr=False)
    load: float = field(default=1.0, repr=False)

    @property
    def total_units_used(self) -> int:
        """Resource units (lane circuits / slot trains) across all channels."""
        return sum(len(a.circuits) for a in self.allocations)

    #: Backwards-compatible alias; the attribute predates non-lane kinds.
    total_lanes_used = total_units_used

    @property
    def configuration_bits(self) -> int:
        """Total configuration payload shipped over the BE network."""
        return self.configuration_commands * self.command_bits

    @property
    def reconfiguration_time_s(self) -> float:
        """Time needed to ship all configuration commands over the BE network."""
        return self.delivery.total_time_s if self.delivery is not None else 0.0


@dataclass
class FaultRecovery:
    """Everything :meth:`CentralCoordinationNode.handle_fault` decided and did."""

    #: Undirected links and router positions the fault killed.
    dead_links: List[Any] = field(default_factory=list)
    dead_routers: List[Position] = field(default_factory=list)
    #: Applications whose routes or mapped tiles touched the dead resources,
    #: in admission order.
    displaced: List[str] = field(default_factory=list)
    #: Displaced applications successfully re-mapped and re-admitted on the
    #: degraded fabric (their traffic re-attached where it was attached).
    readmitted: List[str] = field(default_factory=list)
    #: Displaced applications the degraded fabric could no longer carry.
    rejected: List[str] = field(default_factory=list)
    #: Advisory fabric recommendation per rejected application when a
    #: :class:`~repro.noc.selection.FabricSelector` was consulted
    #: (``None`` = no fabric can carry it).
    fallback_kinds: Dict[str, Optional[str]] = field(default_factory=dict)
    #: Post-drain delivered-word count per stream detached during recovery.
    final_stream_counts: Dict[str, int] = field(default_factory=dict)
    #: Network cycles the halt/drain/re-admit sequence consumed.
    recovery_cycles: int = 0
    #: BE-network transport time of the re-admissions' configuration.
    reconfiguration_time_s: float = 0.0

    @property
    def recovered_all(self) -> bool:
        """True when every displaced application was re-admitted."""
        return not self.rejected


def _undirected(link: Any) -> Any:
    a, b = link
    return (a, b) if a <= b else (b, a)


class CentralCoordinationNode:
    """Run-time resource manager of the multi-tile SoC, generic over fabrics.

    The CCN can be used two ways:

    * **analytic** — construct with a *topology* and a *kind* (default the
      paper's circuit switching); admissions are planned on the CCN's own
      admission controller without any live network,
    * **bound** — construct with a live ``network=``; the CCN shares the
      network's own admission controller (so ``attach_channel`` calls and CCN
      admissions draw from the same pools), programs routers on admission and
      can attach/detach the admitted applications' paced word streams.

    A live network may also be passed per call to :meth:`admit` /
    :meth:`release` (the pre-lifecycle API); it must be of the CCN's kind.
    """

    def __init__(
        self,
        topology: Optional[Topology] = None,
        grid: Optional[TileGrid] = None,
        allocator: Optional[AdmissionController] = None,
        be_network: Optional[BestEffortNetwork] = None,
        network_frequency_hz: Optional[float] = None,
        ccn_position: Position = (0, 0),
        kind: str = "circuit",
        network: Optional[NocBase] = None,
    ) -> None:
        if topology is None:
            if network is None:
                raise ConfigurationError("a topology or a live network is required")
            topology = network.topology
        self.topology = topology
        #: Backwards-compatible alias; the attribute predates non-mesh fabrics.
        self.mesh = topology
        self.network = network
        self._network_cls = type(network) if network is not None else resolve_network_kind(kind)
        #: Canonical kind name of the managed fabric.
        self.kind = self._network_cls.kind
        self.grid = grid if grid is not None else TileGrid(topology)
        if allocator is None and self._network_cls.performs_admission:
            if network is not None:
                allocator = network.admission
            else:
                allocator = self._network_cls.default_admission_controller(topology)
        #: The admission controller (``None`` for kinds without admission).
        self.allocator = allocator
        self.be_network = (
            be_network if be_network is not None else BestEffortNetwork(topology, ccn_position)
        )
        if network_frequency_hz is None:
            network_frequency_hz = network.frequency_hz if network is not None else 1075e6
        self.network_frequency_hz = network_frequency_hz
        self.mapper = SpatialMapper(self.grid)
        self._admissions: Dict[str, ApplicationAdmission] = {}

    # -- feasibility ------------------------------------------------------------------------

    def feasibility(self, graph: ProcessGraph) -> FeasibilityReport:
        """Check whether every GT channel fits the kind's per-link resources."""
        allocator = self.allocator
        if allocator is None:
            report = FeasibilityReport(graph.name, True, float("inf"), unit_name="")
        else:
            capacity = allocator.unit_capacity_mbps(self.network_frequency_hz)
            report = FeasibilityReport(
                graph.name, True, capacity, unit_name=allocator.unit_name
            )
        if len(graph.processes) > self.topology.size:
            report.feasible = False
            report.problems.append(
                f"{len(graph.processes)} processes exceed the {self.topology.size} available tiles"
            )
        if allocator is None:
            return report
        for channel in graph.channels:
            if channel.traffic_class != TrafficClass.GUARANTEED_THROUGHPUT:
                continue
            units = allocator.units_required(channel.bandwidth_mbps, self.network_frequency_hz)
            report.channel_units[channel.name] = units
            if units > allocator.units_per_link:
                report.feasible = False
                report.problems.append(
                    f"channel {channel.name!r} needs {units} {allocator.unit_name}s but a "
                    f"link only has {allocator.units_per_link}"
                )
        return report

    # -- admission ------------------------------------------------------------------------------

    def _resolve_network(self, network: Optional[NocBase]) -> Optional[NocBase]:
        """The live network of one call (argument wins over the bound one)."""
        network = network if network is not None else self.network
        if network is not None and type(network).kind != self.kind:
            raise ConfigurationError(
                f"CCN manages a {self.kind!r} fabric but was given a "
                f"{type(network).kind!r} network"
            )
        return network

    def admit(
        self,
        graph: ProcessGraph,
        network: Optional[NocBase] = None,
    ) -> ApplicationAdmission:
        """Map, allocate and configure one application (raises on infeasibility).

        With a live network (bound or passed here) the allocations are also
        written into the routers — crossbar configuration memories for lane
        circuits, revolving slot tables for slot trains.  Rolls everything
        back if any channel cannot be allocated.
        """
        if graph.name in self._admissions:
            raise MappingError(f"application {graph.name!r} is already admitted")
        network = self._resolve_network(network)
        report = self.feasibility(graph)
        if not report.feasible:
            raise MappingError(
                f"application {graph.name!r} is infeasible: " + "; ".join(report.problems)
            )

        mapping = self.mapper.map(graph)
        admission = ApplicationAdmission(
            graph.name,
            mapping,
            kind=self.kind,
            command_bits=self._network_cls.config_command_bits,
            graph=graph,
        )

        gt_channels = [
            c for c in graph.channels if c.traffic_class == TrafficClass.GUARANTEED_THROUGHPUT
        ]
        gt_channels.sort(key=lambda c: c.bandwidth_mbps, reverse=True)
        admission.best_effort_channels = [
            c.name for c in graph.channels if c.traffic_class == TrafficClass.BEST_EFFORT
        ]

        allocated: List[Any] = []
        if self.allocator is not None:
            try:
                for channel in gt_channels:
                    src = mapping.position_of(channel.src)
                    dst = mapping.position_of(channel.dst)
                    allocation = self.allocator.allocate(
                        f"{graph.name}:{channel.name}",
                        src,
                        dst,
                        channel.bandwidth_mbps,
                        self.network_frequency_hz,
                    )
                    allocated.append(allocation)
            except AllocationError:
                for allocation in allocated:
                    self.allocator.release(allocation.channel_name)
                self.mapper.unmap(mapping)
                raise

        admission.allocations = allocated

        # One configuration command per router hop of every circuit; command
        # width is the kind's (10-bit lane command vs. slot-table write).
        commands_per_router: Dict[Position, int] = {}
        for allocation in allocated:
            for circuit in allocation.circuits:
                for hop in circuit.hops:
                    commands_per_router[hop.position] = commands_per_router.get(hop.position, 0) + 1
        admission.configuration_commands = sum(commands_per_router.values())
        if commands_per_router:
            admission.delivery = self.be_network.deliver(
                commands_per_router, admission.command_bits
            )

        if network is not None:
            for allocation in allocated:
                network.apply_allocation(allocation)

        self._admissions[graph.name] = admission
        return admission

    # -- traffic ----------------------------------------------------------------------------

    def attach_traffic(
        self,
        application: str,
        word_source: WordSource,
        load: float = 1.0,
        network: Optional[NocBase] = None,
    ) -> List[str]:
        """Attach the admitted application's paced GT word streams to a live network.

        For kinds with admission the streams ride the allocations made by
        :meth:`admit` (the network's routers are already programmed); packet
        switching attaches contention-based streams per mapped channel.
        Returns the created stream-registry names (recorded on the admission
        so :meth:`release` can detach them again).
        """
        admission = self.admission(application)
        network = self._resolve_network(network)
        if network is None:
            raise ConfigurationError("attaching traffic requires a live network")
        if admission.stream_names:
            raise ConfigurationError(
                f"application {application!r} already has traffic attached"
            )
        graph = admission.graph
        names: List[str] = []
        current: Optional[str] = None
        try:
            if self.allocator is not None:
                for allocation in admission.allocations:
                    if allocation.is_local or not allocation.circuits:
                        continue
                    current = allocation.channel_name
                    endpoints = network.attach_channel(
                        allocation.channel_name,
                        allocation.src,
                        allocation.dst,
                        allocation.bandwidth_mbps,
                        word_source,
                        load,
                        allocation=allocation,
                    )
                    if isinstance(endpoints, list):
                        names.extend(ep.name for ep in endpoints)
                    else:
                        names.append(endpoints.name)
            else:
                if graph is None:
                    raise ConfigurationError(
                        f"admission of {application!r} has no process graph to attach"
                    )
                for channel in graph.channels:
                    if channel.traffic_class != TrafficClass.GUARANTEED_THROUGHPUT:
                        continue
                    src = admission.mapping.position_of(channel.src)
                    dst = admission.mapping.position_of(channel.dst)
                    if src == dst:
                        continue
                    current = f"{application}:{channel.name}"
                    endpoints = network.attach_channel(
                        current,
                        src,
                        dst,
                        channel.bandwidth_mbps,
                        word_source,
                        load,
                    )
                    names.append(endpoints.name)
        except Exception:
            # Transactional: detach exactly the streams this call attached —
            # the recorded names plus any "name#i" partial of the channel
            # that failed mid-striping.  A *foreign* stream whose name
            # collided (the usual failure) is left alone.
            cleanup = set(names)
            if current is not None:
                cleanup.update(
                    stream_name
                    for stream_name in network.streams
                    if stream_name.startswith(f"{current}#")
                )
            for stream_name in cleanup:
                if stream_name in network.streams:
                    network.detach_stream(stream_name)
            raise
        admission.stream_names = names
        admission.word_source = word_source
        admission.load = load
        return names

    # -- release ----------------------------------------------------------------------------

    def release(
        self,
        application: str,
        network: Optional[NocBase] = None,
        drain_chunk_cycles: int = 64,
        max_drain_cycles: int = 4096,
    ) -> Dict[str, int]:
        """Tear an admitted application down (streams, configuration, resources, tiles).

        An application with attached traffic is stopped the way the hardware
        would stop it: injection halts first, the network then runs until the
        application's in-flight words have drained to their sinks (other
        applications keep running meanwhile), and only then are the streams
        detached, the routers deconfigured and the resources and tiles
        released.  Set ``drain_chunk_cycles=0`` to tear down immediately
        (in-flight words are lost; residual wire state may linger).

        Returns the final post-drain delivered-word count per detached
        stream, so churn accounting can credit the words that arrived during
        the drain.
        """
        network = self._resolve_network(network)
        admission = self.admission(application)
        if admission.stream_names and network is None:
            raise ConfigurationError(
                f"application {application!r} has live streams; release needs the network"
            )
        del self._admissions[application]
        final_counts: Dict[str, int] = {}
        if admission.stream_names:
            for name in admission.stream_names:
                network.halt_stream(name)
            if drain_chunk_cycles:
                # Delivery-stability drain, strided so the timed scheduler
                # can leap across the idle tail of each chunk.
                network.drain_streams(
                    admission.stream_names,
                    check_every=drain_chunk_cycles,
                    max_cycles=max_drain_cycles,
                )
            stats = network.stream_statistics()
            for name in admission.stream_names:
                final_counts[name] = stats[name]["received"]
                network.detach_stream(name)
            admission.stream_names = []
        for allocation in admission.allocations:
            if network is not None:
                network.remove_allocation(allocation)
            if self.allocator is not None:
                self.allocator.release(allocation.channel_name)
        self.mapper.unmap(admission.mapping)
        return final_counts

    # -- fault recovery ----------------------------------------------------------------------

    def affected_admissions(
        self,
        dead_links: Any = (),
        dead_routers: Any = (),
        network: Optional[NocBase] = None,
    ) -> List[str]:
        """Admitted applications whose resources touch the dead links/routers.

        An application is displaced when any of its mapped tiles sits on a
        dead router, when any allocated circuit's route crosses a dead link
        or router, or — for kinds without allocations (packet switching) —
        when the routing path between any GT channel's mapped endpoints
        traverses the dead resource.  For the packet case the *current*
        routing table is consulted, so call this **before** rebuilding
        routing after a fault (the :class:`~repro.noc.faults.FaultInjector`
        does exactly that).
        """
        network = self._resolve_network(network)
        dead_link_set = {_undirected(link) for link in dead_links}
        dead_router_set = set(dead_routers)
        routing = getattr(network, "routing", None) if network is not None else None

        affected: List[str] = []
        for name, admission in self._admissions.items():
            if self._admission_touches(
                admission, dead_link_set, dead_router_set, routing
            ):
                affected.append(name)
        return affected

    def _admission_touches(
        self, admission: ApplicationAdmission, dead_links, dead_routers, routing
    ) -> bool:
        for position in admission.mapping.placement.values():
            if position in dead_routers:
                return True
        for allocation in admission.allocations:
            for circuit in allocation.circuits:
                for position in circuit.route:
                    if position in dead_routers:
                        return True
                for a, b in zip(circuit.route, circuit.route[1:]):
                    if _undirected((a, b)) in dead_links:
                        return True
        if not admission.allocations and self.allocator is None:
            graph = admission.graph
            if routing is None or graph is None:
                return False
            for channel in graph.channels:
                if channel.traffic_class != TrafficClass.GUARANTEED_THROUGHPUT:
                    continue
                src = admission.mapping.position_of(channel.src)
                dst = admission.mapping.position_of(channel.dst)
                if src == dst:
                    continue
                path = routing.path_positions(src, dst)
                for position in path:
                    if position in dead_routers:
                        return True
                for a, b in zip(path, path[1:]):
                    if _undirected((a, b)) in dead_links:
                        return True
        return False

    def apply_degraded_topology(self, degraded: Topology) -> None:
        """Re-anchor every planning structure on the post-fault topology view.

        The live network keeps its construction-time component graph (dead
        wires are handled at the link level); what must follow the degraded
        view is the CCN's *planning* state: feasibility sizing, the tile
        grid (dead routers' tiles stop being mappable), the spatial mapper's
        distance metric and the best-effort configuration transport.
        """
        if not degraded.contains(self.be_network.ccn_position):
            raise FaultError(
                f"the CCN's own router at {self.be_network.ccn_position} is dead — "
                "system coordination is lost"
            )
        self.topology = degraded
        self.mesh = degraded
        self.grid.topology = degraded
        self.grid.mesh = degraded
        self.mapper.mesh = degraded
        self.be_network = BestEffortNetwork(degraded, self.be_network.ccn_position)

    def handle_fault(
        self,
        degraded: Topology,
        dead_links: Any = (),
        dead_routers: Any = (),
        affected: Optional[List[str]] = None,
        selector: Optional[Any] = None,
        network: Optional[NocBase] = None,
        drain_chunk_cycles: int = 64,
        max_drain_cycles: int = 4096,
    ) -> FaultRecovery:
        """Recover the admitted applications from a mid-run link/router fault.

        The run-time half of the paper's coordination story: the CCN
        identifies the admissions whose routes or mapped tiles touch the
        dead resource (*affected*, computed here when not supplied by the
        :class:`~repro.noc.faults.FaultInjector`), halts and drains their
        surviving traffic, releases the broken allocations transactionally
        (the admission controller's pools are invalidated on the dead links
        first, so nothing leaks and nothing re-routes over them), then
        re-maps and re-admits every displaced application on the degraded
        fabric — re-attaching its recorded word stream — and cleanly
        rejects the ones the survivors can no longer carry.  With a
        *selector* each rejection also records an advisory fallback fabric
        recommendation scored on the degraded topology.
        """
        network = self._resolve_network(network)
        dead_link_list = sorted({_undirected(link) for link in dead_links})
        dead_router_list = sorted(set(dead_routers))
        recovery = FaultRecovery(
            dead_links=list(dead_link_list), dead_routers=list(dead_router_list)
        )
        start_cycle = network.kernel.cycle if network is not None else 0

        if affected is None:
            affected = self.affected_admissions(
                dead_link_list, dead_router_list, network
            )
        recovery.displaced = list(affected)

        if self.allocator is not None:
            self.allocator.invalidate_resources(dead_link_list, dead_router_list)
        self.apply_degraded_topology(degraded)

        # Tear every displaced application down first (freeing tiles and
        # units), then re-admit in admission order — releasing everything up
        # front gives the re-mapper the whole surviving fabric to work with.
        plans: List[ApplicationAdmission] = []
        for name in affected:
            admission = self.admission(name)
            plans.append(admission)
            final = self.release(
                name,
                network=network,
                drain_chunk_cycles=drain_chunk_cycles,
                max_drain_cycles=max_drain_cycles,
            )
            recovery.final_stream_counts.update(final)

        for plan in plans:
            graph = plan.graph
            name = plan.application
            if graph is None:
                recovery.rejected.append(name)
                continue
            try:
                readmission = self.admit(graph, network=network)
                if plan.word_source is not None and network is not None:
                    self.attach_traffic(
                        name, plan.word_source, load=plan.load, network=network
                    )
            except (MappingError, AllocationError):
                # Roll back a half-done re-admission (admit succeeded but the
                # traffic re-attach failed) so the rejection leaves no state.
                if name in self._admissions:
                    self.release(name, network=network, drain_chunk_cycles=0)
                recovery.rejected.append(name)
                if selector is not None:
                    decision = selector.select(graph)
                    recovery.fallback_kinds[name] = decision.chosen_kind
            else:
                recovery.readmitted.append(name)
                recovery.reconfiguration_time_s += readmission.reconfiguration_time_s

        if network is not None:
            recovery.recovery_cycles = network.kernel.cycle - start_cycle
        return recovery

    # -- queries -----------------------------------------------------------------------------

    def leak_free(self, network: Optional[NocBase] = None) -> bool:
        """True when no run-time resources are held anywhere.

        The post-release invariant the lifecycle tests and benchmarks check:
        no admissions, every resource unit back in its pool, every tile
        unoccupied and (with a live network) no registered streams.
        """
        network = network if network is not None else self.network
        if self._admissions:
            return False
        if self.allocator is not None and self.allocator.link_utilization() != 0.0:
            return False
        if self.grid.occupancy() != 0.0:
            return False
        if network is not None and network.streams:
            return False
        return True

    @property
    def admitted_applications(self) -> List[str]:
        """Names of the currently admitted applications."""
        return list(self._admissions)

    def admission(self, application: str) -> ApplicationAdmission:
        """The admission record of *application*."""
        try:
            return self._admissions[application]
        except KeyError:
            raise MappingError(f"application {application!r} is not admitted") from None
