"""The Central Coordination Node (Section 1.1).

"The SoC system is organized as a centralized system: one node, called
Central Coordination Node (CCN), performs system coordination functions. …
The CCN performs the feasibility analysis, spatial mapping, process
allocation and configuration of the tiles and the NoC before the start of an
application."

The CCN implemented here runs exactly that admission pipeline:

1. **feasibility analysis** — every guaranteed-throughput channel must fit in
   the lane capacity available at the network clock,
2. **spatial mapping** — :class:`repro.noc.mapping.SpatialMapper`,
3. **path/lane allocation** — :class:`repro.noc.path_allocation.LaneAllocator`,
4. **configuration** — 10-bit commands per lane, transported over the
   best-effort network (:class:`repro.noc.be_network.BestEffortNetwork`) and,
   when a live :class:`repro.noc.network.CircuitSwitchedNoC` is attached,
   written into the routers' configuration memories.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.apps.kpn import ProcessGraph, TrafficClass
from repro.common import AllocationError, MappingError
from repro.noc.be_network import BestEffortNetwork, ConfigurationDelivery
from repro.noc.mapping import Mapping, SpatialMapper
from repro.noc.network import CircuitSwitchedNoC
from repro.noc.path_allocation import CircuitAllocation, LaneAllocator
from repro.noc.tile import TileGrid
from repro.noc.topology import Position, Topology

__all__ = ["FeasibilityReport", "ApplicationAdmission", "CentralCoordinationNode"]


@dataclass
class FeasibilityReport:
    """Result of the CCN's pre-mapping feasibility analysis."""

    application: str
    feasible: bool
    lane_capacity_mbps: float
    channel_lanes: Dict[str, int] = field(default_factory=dict)
    problems: List[str] = field(default_factory=list)


@dataclass
class ApplicationAdmission:
    """Everything the CCN decided while admitting one application."""

    application: str
    mapping: Mapping
    allocations: List[CircuitAllocation] = field(default_factory=list)
    configuration_commands: int = 0
    delivery: Optional[ConfigurationDelivery] = None
    best_effort_channels: List[str] = field(default_factory=list)

    @property
    def total_lanes_used(self) -> int:
        """Lane circuits allocated across all channels."""
        return sum(a.lanes_used for a in self.allocations)

    @property
    def reconfiguration_time_s(self) -> float:
        """Time needed to ship all configuration commands over the BE network."""
        return self.delivery.total_time_s if self.delivery is not None else 0.0


class CentralCoordinationNode:
    """Run-time resource manager of the multi-tile SoC."""

    def __init__(
        self,
        topology: Topology,
        grid: Optional[TileGrid] = None,
        allocator: Optional[LaneAllocator] = None,
        be_network: Optional[BestEffortNetwork] = None,
        network_frequency_hz: float = 1075e6,
        ccn_position: Position = (0, 0),
    ) -> None:
        self.topology = topology
        #: Backwards-compatible alias; the attribute predates non-mesh fabrics.
        self.mesh = topology
        self.grid = grid if grid is not None else TileGrid(topology)
        self.allocator = allocator if allocator is not None else LaneAllocator(topology)
        self.be_network = (
            be_network if be_network is not None else BestEffortNetwork(topology, ccn_position)
        )
        self.network_frequency_hz = network_frequency_hz
        self.mapper = SpatialMapper(self.grid)
        self._admissions: Dict[str, ApplicationAdmission] = {}

    # -- feasibility ------------------------------------------------------------------------

    def feasibility(self, graph: ProcessGraph) -> FeasibilityReport:
        """Check whether every GT channel can be carried by the available lanes."""
        capacity = self.allocator.lane_capacity_mbps(self.network_frequency_hz)
        report = FeasibilityReport(graph.name, True, capacity)
        if len(graph.processes) > self.topology.size:
            report.feasible = False
            report.problems.append(
                f"{len(graph.processes)} processes exceed the {self.topology.size} available tiles"
            )
        for channel in graph.channels:
            if channel.traffic_class != TrafficClass.GUARANTEED_THROUGHPUT:
                continue
            lanes = self.allocator.lanes_required(channel.bandwidth_mbps, self.network_frequency_hz)
            report.channel_lanes[channel.name] = lanes
            if lanes > self.allocator.lanes_per_link:
                report.feasible = False
                report.problems.append(
                    f"channel {channel.name!r} needs {lanes} lanes but a link only has "
                    f"{self.allocator.lanes_per_link}"
                )
        return report

    # -- admission ------------------------------------------------------------------------------

    def admit(
        self,
        graph: ProcessGraph,
        network: Optional[CircuitSwitchedNoC] = None,
    ) -> ApplicationAdmission:
        """Map, allocate and configure one application (raises on infeasibility)."""
        if graph.name in self._admissions:
            raise MappingError(f"application {graph.name!r} is already admitted")
        report = self.feasibility(graph)
        if not report.feasible:
            raise MappingError(
                f"application {graph.name!r} is infeasible: " + "; ".join(report.problems)
            )

        mapping = self.mapper.map(graph)
        admission = ApplicationAdmission(graph.name, mapping)

        gt_channels = [
            c for c in graph.channels if c.traffic_class == TrafficClass.GUARANTEED_THROUGHPUT
        ]
        gt_channels.sort(key=lambda c: c.bandwidth_mbps, reverse=True)
        admission.best_effort_channels = [
            c.name for c in graph.channels if c.traffic_class == TrafficClass.BEST_EFFORT
        ]

        allocated: List[CircuitAllocation] = []
        try:
            for channel in gt_channels:
                src = mapping.position_of(channel.src)
                dst = mapping.position_of(channel.dst)
                allocation = self.allocator.allocate(
                    f"{graph.name}:{channel.name}",
                    src,
                    dst,
                    channel.bandwidth_mbps,
                    self.network_frequency_hz,
                )
                allocated.append(allocation)
        except AllocationError:
            for allocation in allocated:
                self.allocator.release(allocation.channel_name)
            self.mapper.unmap(mapping)
            raise

        admission.allocations = allocated

        # One 10-bit command per router hop of every lane circuit.
        commands_per_router: Dict[Position, int] = {}
        for allocation in allocated:
            for circuit in allocation.circuits:
                for hop in circuit.hops:
                    commands_per_router[hop.position] = commands_per_router.get(hop.position, 0) + 1
        admission.configuration_commands = sum(commands_per_router.values())
        admission.delivery = self.be_network.deliver(commands_per_router)

        if network is not None:
            for allocation in allocated:
                network.apply_allocation(allocation)

        self._admissions[graph.name] = admission
        return admission

    def release(
        self,
        application: str,
        network: Optional[CircuitSwitchedNoC] = None,
    ) -> None:
        """Tear an admitted application down again (frees tiles and lanes)."""
        try:
            admission = self._admissions.pop(application)
        except KeyError:
            raise MappingError(f"application {application!r} is not admitted") from None
        for allocation in admission.allocations:
            if network is not None:
                network.remove_allocation(allocation)
            self.allocator.release(allocation.channel_name)
        self.mapper.unmap(admission.mapping)

    @property
    def admitted_applications(self) -> List[str]:
        """Names of the currently admitted applications."""
        return list(self._admissions)

    def admission(self, application: str) -> ApplicationAdmission:
        """The admission record of *application*."""
        try:
            return self._admissions[application]
        except KeyError:
            raise MappingError(f"application {application!r} is not admitted") from None
