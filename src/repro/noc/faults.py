"""Run-time fault injection: links and routers that die while traffic flows.

The static fault story — an :class:`~repro.noc.topology.IrregularMesh` frozen
before the kernel starts — only shows that the allocators route *around*
holes.  The paper's run-time reconfiguration claim needs the other half: a
resource that dies **mid-run**, under live traffic, with the Central
Coordination Node detecting the loss and re-admitting the displaced
applications on whatever fabric survives.  This module is that half:

* :class:`FaultSpec` — a declarative "kill this link/router" (either a fixed
  target or a deterministic *chooser* resolved against the live network at
  injection time, so storm schedules can target whatever the traffic is
  actually using),
* :class:`FaultInjector` — validates the kill (a cut that would disconnect
  the survivors raises :class:`~repro.common.FaultError` naming the cut,
  atomically, before any wire is touched), snapshots which admissions are
  affected *under the pre-fault routing*, kills the wires (in-flight words /
  flits / phits are dropped and counted on the links), derives the degraded
  :class:`~repro.noc.topology.IrregularMesh` view, rebuilds the network's
  routing state, invalidates the :class:`~repro.noc.selection.FabricSelector`
  probe cache (stale probes would score the pre-fault topology), and hands
  the degraded view to :meth:`~repro.noc.ccn.CentralCoordinationNode
  .handle_fault` for recovery,
* deterministic victim choosers (:func:`random_link_chooser`,
  :func:`random_router_chooser`, :func:`loaded_link_chooser`) used by the
  failure-storm campaigns of :mod:`repro.experiments.storm`.

Faults are injected *between* cycles (the kernel is in its idle phase), so a
storm schedule replayed under ``schedule="strict"`` and ``schedule="auto"``
stays bit-identical — the repo-wide equivalence discipline extends to every
storm scenario.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.common import FaultError
from repro.noc.ccn import CentralCoordinationNode, FaultRecovery
from repro.noc.fabric import NocBase
from repro.noc.topology import IrregularMesh, Position, Topology

__all__ = [
    "FaultSpec",
    "FaultReport",
    "FaultInjector",
    "random_link_chooser",
    "random_router_chooser",
    "loaded_link_chooser",
]

Link = Tuple[Position, Position]
#: A chooser resolves a fault target against the live system at injection
#: time; it must be deterministic for the strict-vs-auto discipline to hold.
Chooser = Callable[[NocBase, Optional[CentralCoordinationNode]], Any]


def _undirected(link: Link) -> Link:
    a, b = link
    return (a, b) if a <= b else (b, a)


@dataclass(frozen=True)
class FaultSpec:
    """One scheduled kill: a link or a router, fixed or chosen at run time."""

    kind: str  # "link" | "router"
    target: Optional[Any] = None
    chooser: Optional[Chooser] = None

    def __post_init__(self) -> None:
        if self.kind not in ("link", "router"):
            raise ValueError(f"unknown fault kind {self.kind!r}")
        if (self.target is None) == (self.chooser is None):
            raise ValueError("exactly one of target/chooser must be given")


@dataclass
class FaultReport:
    """What one injected fault did to the network and its applications."""

    cycle: int
    kind: str
    target: Any
    #: In-flight wire-level units lost at the kill itself.
    wire_drops: int
    #: What one dropped unit is for this network kind (phit/flit/word).
    drop_unit: str
    #: The CCN's recovery outcome (``None`` when no CCN is attached).
    recovery: Optional[FaultRecovery] = None
    #: Affected applications, snapshotted under the pre-fault routing.
    affected: List[str] = field(default_factory=list)

    def describe(self) -> str:
        """One-line human-readable summary used by the epoch telemetry."""
        if self.kind == "link":
            (a, b) = self.target
            what = f"link {a}-{b}"
        else:
            what = f"router {self.target}"
        suffix = ""
        if self.recovery is not None:
            suffix = (
                f" (displaced {len(self.recovery.displaced)},"
                f" readmitted {len(self.recovery.readmitted)},"
                f" rejected {len(self.recovery.rejected)})"
            )
        return f"kill {what}{suffix}"


class FaultInjector:
    """Kills links/routers on a running network and drives CCN recovery.

    Construct once per network; every :meth:`kill_link` / :meth:`kill_router`
    call accumulates into the degraded topology view.  With a *ccn* the
    injector runs the full recovery pipeline; with a *selector* the fabric
    probe cache is re-anchored on the degraded topology (invalidating every
    cached probe) before any post-fault recommendation is scored.
    """

    def __init__(
        self,
        network: NocBase,
        ccn: Optional[CentralCoordinationNode] = None,
        selector: Optional[Any] = None,
        drain_chunk_cycles: int = 64,
        max_drain_cycles: int = 4096,
    ) -> None:
        self.network = network
        self.ccn = ccn
        self.selector = selector
        self.drain_chunk_cycles = drain_chunk_cycles
        self.max_drain_cycles = max_drain_cycles
        #: Every report produced so far, in injection order.
        self.reports: List[FaultReport] = []

    # -- validation -------------------------------------------------------------------

    @property
    def degraded_topology(self) -> Topology:
        """Current surviving-topology view (construction topology minus kills)."""
        return self.network.degraded_topology()

    def _candidate(
        self, add_link: Optional[Link] = None, add_router: Optional[Position] = None
    ) -> Topology:
        """The degraded view *if* the given kill happened — or a FaultError.

        Validation is atomic: raised before a single wire is touched, so a
        rejected kill leaves network, CCN and allocator untouched.
        """
        base = self.network.topology
        broken_links = set(self.network.dead_links)
        broken_routers = set(self.network.dead_routers)
        if isinstance(base, IrregularMesh):
            broken_links |= set(base.broken_links)
            broken_routers |= set(base.broken_routers)
            base = base.base
        cut = (
            f"link {add_link[0]}-{add_link[1]}"
            if add_link is not None
            else f"router {add_router}"
        )
        if add_link is not None:
            broken_links.add(_undirected(add_link))
        if add_router is not None:
            broken_routers.add(add_router)
        try:
            return IrregularMesh(
                base, tuple(sorted(broken_links)), tuple(sorted(broken_routers))
            )
        except ValueError as error:
            raise FaultError(f"cannot kill {cut}: {error}") from None

    def survives(
        self, link: Optional[Link] = None, router: Optional[Position] = None
    ) -> bool:
        """True when the given kill would leave the fabric connected."""
        try:
            self._candidate(add_link=link, add_router=router)
        except FaultError:
            return False
        return True

    # -- injection --------------------------------------------------------------------

    def kill_link(self, a: Position, b: Position) -> FaultReport:
        """Kill the bidirectional link between *a* and *b* and recover."""
        link = _undirected((a, b))
        if link in self.network.dead_links:
            raise FaultError(f"link {link[0]}-{link[1]} is already dead")
        if (a, b) not in self.network.links and (b, a) not in self.network.links:
            raise FaultError(f"no link between {a} and {b} to kill")
        degraded = self._candidate(add_link=link)
        return self._execute("link", link, degraded, [link], [])

    def kill_router(self, position: Position) -> FaultReport:
        """Kill the router at *position* (and every incident link) and recover."""
        if position in self.network.dead_routers:
            raise FaultError(f"router {position} is already dead")
        if position not in self.network.routers:
            raise FaultError(f"no router at {position} to kill")
        if self.ccn is not None and position == self.ccn.be_network.ccn_position:
            raise FaultError(
                f"cannot kill the CCN's own router at {position} — "
                "system coordination would be lost"
            )
        degraded = self._candidate(add_router=position)
        return self._execute("router", position, degraded, [], [position])

    def inject(self, spec: FaultSpec) -> FaultReport:
        """Resolve and execute one :class:`FaultSpec`."""
        target = spec.target
        if target is None:
            target = spec.chooser(self.network, self.ccn)
        if spec.kind == "link":
            a, b = target
            return self.kill_link(a, b)
        return self.kill_router(target)

    def _execute(
        self,
        kind: str,
        target: Any,
        degraded: Topology,
        dead_links: List[Link],
        dead_routers: List[Position],
    ) -> FaultReport:
        network = self.network
        ccn = self.ccn

        # Affected admissions must be snapshotted under the *pre-fault*
        # routing: for the packet fabric the displaced streams are the ones
        # whose old paths crossed the dead resource, which the rebuilt table
        # no longer knows.
        affected: List[str] = []
        if ccn is not None:
            affected = ccn.affected_admissions(dead_links, dead_routers, network)

        if kind == "link":
            wire_drops = network.fail_link(*target)
        else:
            wire_drops = network.fail_router(target)
        network.refresh_routing(degraded)

        # A mid-run fault changes the effective topology without anyone
        # assigning selector.topology — re-anchor it here so every cached
        # probe (keyed per application and kind) is dropped and post-fault
        # recommendations are scored on the surviving fabric.
        if self.selector is not None:
            self.selector.topology = degraded

        report = FaultReport(
            cycle=network.kernel.cycle,
            kind=kind,
            target=target,
            wire_drops=wire_drops,
            drop_unit=network.fault_drop_unit,
            affected=affected,
        )
        if ccn is not None:
            report.recovery = ccn.handle_fault(
                degraded,
                dead_links=dead_links,
                dead_routers=dead_routers,
                affected=affected,
                selector=self.selector,
                network=network,
                drain_chunk_cycles=self.drain_chunk_cycles,
                max_drain_cycles=self.max_drain_cycles,
            )
        self.reports.append(report)
        return report


# ---------------------------------------------------------------------------
# Deterministic victim choosers for storm schedules
# ---------------------------------------------------------------------------


def _surviving_links(network: NocBase) -> List[Link]:
    """Undirected surviving links, sorted (the chooser candidate pool)."""
    dead = set(network.dead_links)
    links = {
        _undirected(link)
        for link in network.links
        if _undirected(link) not in dead
    }
    return sorted(links)


def _connectivity_filter(
    network: NocBase, ccn: Optional[CentralCoordinationNode]
) -> FaultInjector:
    # A throwaway injector reuses the candidate validation; it never touches
    # wires, so building one inside a chooser is free of side effects.
    return FaultInjector(network, ccn=None, selector=None)


def random_link_chooser(seed: int = 0) -> Chooser:
    """A chooser killing a pseudo-random surviving, non-disconnecting link.

    Deterministic: the chooser owns a :class:`random.Random` seeded once, so
    repeated injections (one storm schedule) and repeated runs (strict vs.
    auto) walk the identical victim sequence.
    """
    rng = random.Random(seed)

    def choose(network: NocBase, ccn: Optional[CentralCoordinationNode]) -> Link:
        probe = _connectivity_filter(network, ccn)
        candidates = _surviving_links(network)
        rng.shuffle(candidates)
        for link in candidates:
            if probe.survives(link=link):
                return link
        raise FaultError("no surviving link can be killed without a disconnect")

    return choose


def random_router_chooser(seed: int = 0) -> Chooser:
    """A chooser killing a pseudo-random surviving, non-disconnecting router.

    Never picks the CCN's own router (killing the coordinator is game over,
    not a recoverable fault).
    """
    rng = random.Random(seed)

    def choose(network: NocBase, ccn: Optional[CentralCoordinationNode]) -> Position:
        probe = _connectivity_filter(network, ccn)
        forbidden = set(network.dead_routers)
        if ccn is not None:
            forbidden.add(ccn.be_network.ccn_position)
        candidates = sorted(p for p in network.routers if p not in forbidden)
        rng.shuffle(candidates)
        for position in candidates:
            if probe.survives(router=position):
                return position
        raise FaultError("no surviving router can be killed without a disconnect")

    return choose


def loaded_link_chooser(seed: int = 0) -> Chooser:
    """A chooser that prefers links currently carrying admitted traffic.

    Builds a usage count per undirected link from the CCN's allocations
    (lane circuits / slot trains) or, for the packet fabric, from the
    routing paths of every admitted GT channel — then kills the busiest
    killable link (ties and the no-traffic fallback resolved by the seeded
    order of :func:`random_link_chooser`).  Storm campaigns use this to
    guarantee that a fault actually displaces somebody.
    """
    fallback = random_link_chooser(seed)

    def choose(network: NocBase, ccn: Optional[CentralCoordinationNode]) -> Link:
        usage: Dict[Link, int] = {}
        if ccn is not None:
            if ccn.allocator is not None:
                for allocation in ccn.allocator.allocations:
                    for circuit in allocation.circuits:
                        for a, b in zip(circuit.route, circuit.route[1:]):
                            link = _undirected((a, b))
                            usage[link] = usage.get(link, 0) + 1
            else:
                routing = getattr(network, "routing", None)
                for name in ccn.admitted_applications:
                    admission = ccn.admission(name)
                    graph = admission.graph
                    if routing is None or graph is None:
                        continue
                    for channel in graph.channels:
                        src = admission.mapping.position_of(channel.src)
                        dst = admission.mapping.position_of(channel.dst)
                        if src == dst:
                            continue
                        path = routing.path_positions(src, dst)
                        for a, b in zip(path, path[1:]):
                            link = _undirected((a, b))
                            usage[link] = usage.get(link, 0) + 1
        if usage:
            probe = _connectivity_filter(network, ccn)
            dead = {_undirected(link) for link in network.dead_links}
            ranked = sorted(usage.items(), key=lambda item: (-item[1], item[0]))
            for link, _ in ranked:
                if link not in dead and probe.survives(link=link):
                    return link
        return fallback(network, ccn)

    return choose
