"""Run-time fault injection: links and routers that die while traffic flows.

The static fault story — an :class:`~repro.noc.topology.IrregularMesh` frozen
before the kernel starts — only shows that the allocators route *around*
holes.  The paper's run-time reconfiguration claim needs the other half: a
resource that dies **mid-run**, under live traffic, with the Central
Coordination Node detecting the loss and re-admitting the displaced
applications on whatever fabric survives.  This module is that half:

* :class:`FaultSpec` — a declarative "kill this link/router" (either a fixed
  target or a deterministic *chooser* resolved against the live network at
  injection time, so storm schedules can target whatever the traffic is
  actually using),
* :class:`FaultInjector` — validates the kill (a cut that would disconnect
  the survivors raises :class:`~repro.common.FaultError` naming the cut,
  atomically, before any wire is touched), snapshots which admissions are
  affected *under the pre-fault routing*, kills the wires (in-flight words /
  flits / phits are dropped and counted on the links), derives the degraded
  :class:`~repro.noc.topology.IrregularMesh` view, rebuilds the network's
  routing state, invalidates the :class:`~repro.noc.selection.FabricSelector`
  probe cache (stale probes would score the pre-fault topology), and hands
  the degraded view to :meth:`~repro.noc.ccn.CentralCoordinationNode
  .handle_fault` for recovery,
* deterministic victim choosers (:func:`random_link_chooser`,
  :func:`random_router_chooser`, :func:`loaded_link_chooser`) used by the
  failure-storm campaigns of :mod:`repro.experiments.storm`,
* **correlated** fault models: :func:`row_cut_chooser` severs every
  surviving horizontal link of one mesh row in a single atomic kill (a
  cut trace through the die), :func:`region_chooser` takes down every
  router inside a rectangular window at once (a power-domain failure).
  A group kill validates cumulatively — the whole set must leave the
  survivors connected *together*, not merely one at a time — executes as
  one fault event (one routing rebuild, one CCN recovery pass) and
  produces one :class:`FaultReport`.

Faults are injected *between* cycles (the kernel is in its idle phase), so a
storm schedule replayed under ``schedule="strict"`` and ``schedule="auto"``
stays bit-identical — the repo-wide equivalence discipline extends to every
storm scenario.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.common import FaultError
from repro.noc.ccn import CentralCoordinationNode, FaultRecovery
from repro.noc.fabric import NocBase
from repro.noc.topology import IrregularMesh, Position, Topology

__all__ = [
    "FaultSpec",
    "FaultReport",
    "FaultInjector",
    "random_link_chooser",
    "random_router_chooser",
    "loaded_link_chooser",
    "row_cut_chooser",
    "region_chooser",
]

Link = Tuple[Position, Position]
#: A chooser resolves a fault target against the live system at injection
#: time; it must be deterministic for the strict-vs-auto discipline to hold.
Chooser = Callable[[NocBase, Optional[CentralCoordinationNode]], Any]


def _undirected(link: Link) -> Link:
    a, b = link
    return (a, b) if a <= b else (b, a)


@dataclass(frozen=True)
class FaultSpec:
    """One scheduled kill: a link or a router, fixed or chosen at run time.

    A chooser (or fixed target) may also yield a *list* of links/routers —
    a correlated kill (row cut, power-domain loss) executed as one atomic
    fault event with a single recovery pass.
    """

    kind: str  # "link" | "router"
    target: Optional[Any] = None
    chooser: Optional[Chooser] = None

    def __post_init__(self) -> None:
        if self.kind not in ("link", "router"):
            raise ValueError(f"unknown fault kind {self.kind!r}")
        if (self.target is None) == (self.chooser is None):
            raise ValueError("exactly one of target/chooser must be given")


@dataclass
class FaultReport:
    """What one injected fault did to the network and its applications."""

    cycle: int
    kind: str
    target: Any
    #: In-flight wire-level units lost at the kill itself.
    wire_drops: int
    #: What one dropped unit is for this network kind (phit/flit/word).
    drop_unit: str
    #: The CCN's recovery outcome (``None`` when no CCN is attached).
    recovery: Optional[FaultRecovery] = None
    #: Affected applications, snapshotted under the pre-fault routing.
    affected: List[str] = field(default_factory=list)

    def describe(self) -> str:
        """One-line human-readable summary used by the epoch telemetry."""
        if self.kind == "link":
            (a, b) = self.target
            what = f"link {a}-{b}"
        elif self.kind == "link_group":
            what = f"{len(self.target)} links " + ", ".join(
                f"{a}-{b}" for a, b in self.target
            )
        elif self.kind == "router_group":
            what = f"{len(self.target)} routers " + ", ".join(
                str(p) for p in self.target
            )
        else:
            what = f"router {self.target}"
        suffix = ""
        if self.recovery is not None:
            suffix = (
                f" (displaced {len(self.recovery.displaced)},"
                f" readmitted {len(self.recovery.readmitted)},"
                f" rejected {len(self.recovery.rejected)})"
            )
        return f"kill {what}{suffix}"


class FaultInjector:
    """Kills links/routers on a running network and drives CCN recovery.

    Construct once per network; every :meth:`kill_link` / :meth:`kill_router`
    call accumulates into the degraded topology view.  With a *ccn* the
    injector runs the full recovery pipeline; with a *selector* the fabric
    probe cache is re-anchored on the degraded topology (invalidating every
    cached probe) before any post-fault recommendation is scored.
    """

    def __init__(
        self,
        network: NocBase,
        ccn: Optional[CentralCoordinationNode] = None,
        selector: Optional[Any] = None,
        drain_chunk_cycles: int = 64,
        max_drain_cycles: int = 4096,
    ) -> None:
        self.network = network
        self.ccn = ccn
        self.selector = selector
        self.drain_chunk_cycles = drain_chunk_cycles
        self.max_drain_cycles = max_drain_cycles
        #: Every report produced so far, in injection order.
        self.reports: List[FaultReport] = []

    # -- validation -------------------------------------------------------------------

    @property
    def degraded_topology(self) -> Topology:
        """Current surviving-topology view (construction topology minus kills)."""
        return self.network.degraded_topology()

    def _candidate(
        self,
        add_link: Optional[Link] = None,
        add_router: Optional[Position] = None,
        add_links: Tuple[Link, ...] = (),
        add_routers: Tuple[Position, ...] = (),
    ) -> Topology:
        """The degraded view *if* the given kill(s) happened — or a FaultError.

        Validation is atomic: raised before a single wire is touched, so a
        rejected kill leaves network, CCN and allocator untouched.  A group
        kill validates *cumulatively* — every member lands in the candidate
        topology together.
        """
        links = list(add_links)
        routers = list(add_routers)
        if add_link is not None:
            links.append(add_link)
        if add_router is not None:
            routers.append(add_router)
        base = self.network.topology
        broken_links = set(self.network.dead_links)
        broken_routers = set(self.network.dead_routers)
        if isinstance(base, IrregularMesh):
            broken_links |= set(base.broken_links)
            broken_routers |= set(base.broken_routers)
            base = base.base
        parts = [f"link {a}-{b}" for a, b in links] + [f"router {p}" for p in routers]
        cut = ", ".join(parts)
        broken_links |= {_undirected(link) for link in links}
        broken_routers |= set(routers)
        try:
            return IrregularMesh(
                base, tuple(sorted(broken_links)), tuple(sorted(broken_routers))
            )
        except ValueError as error:
            raise FaultError(f"cannot kill {cut}: {error}") from None

    def survives(
        self,
        link: Optional[Link] = None,
        router: Optional[Position] = None,
        links: Tuple[Link, ...] = (),
        routers: Tuple[Position, ...] = (),
    ) -> bool:
        """True when the given kill(s) would leave the fabric connected."""
        try:
            self._candidate(
                add_link=link, add_router=router, add_links=links, add_routers=routers
            )
        except FaultError:
            return False
        return True

    # -- injection --------------------------------------------------------------------

    def kill_link(self, a: Position, b: Position) -> FaultReport:
        """Kill the bidirectional link between *a* and *b* and recover."""
        link = _undirected((a, b))
        if link in self.network.dead_links:
            raise FaultError(f"link {link[0]}-{link[1]} is already dead")
        if (a, b) not in self.network.links and (b, a) not in self.network.links:
            raise FaultError(f"no link between {a} and {b} to kill")
        degraded = self._candidate(add_link=link)
        return self._execute("link", link, degraded, [link], [])

    def kill_router(self, position: Position) -> FaultReport:
        """Kill the router at *position* (and every incident link) and recover."""
        if position in self.network.dead_routers:
            raise FaultError(f"router {position} is already dead")
        if position not in self.network.routers:
            raise FaultError(f"no router at {position} to kill")
        if self.ccn is not None and position == self.ccn.be_network.ccn_position:
            raise FaultError(
                f"cannot kill the CCN's own router at {position} — "
                "system coordination would be lost"
            )
        degraded = self._candidate(add_router=position)
        return self._execute("router", position, degraded, [], [position])

    def kill_link_group(self, links: List[Link]) -> FaultReport:
        """Kill several links as *one* correlated fault event.

        Connectivity is validated cumulatively and atomically; the routing
        rebuild, selector re-anchoring and CCN recovery all run once, over
        the whole group — exactly what a physical row cut does.
        """
        group: List[Link] = []
        for a, b in links:
            link = _undirected((a, b))
            if link in self.network.dead_links:
                raise FaultError(f"link {link[0]}-{link[1]} is already dead")
            if (a, b) not in self.network.links and (b, a) not in self.network.links:
                raise FaultError(f"no link between {a} and {b} to kill")
            if link not in group:
                group.append(link)
        if not group:
            raise FaultError("a correlated link kill needs at least one link")
        degraded = self._candidate(add_links=tuple(group))
        return self._execute("link_group", tuple(group), degraded, group, [])

    def kill_router_group(self, positions: List[Position]) -> FaultReport:
        """Kill several routers as *one* correlated fault event (power domain)."""
        group: List[Position] = []
        for position in positions:
            if position in self.network.dead_routers:
                raise FaultError(f"router {position} is already dead")
            if position not in self.network.routers:
                raise FaultError(f"no router at {position} to kill")
            if self.ccn is not None and position == self.ccn.be_network.ccn_position:
                raise FaultError(
                    f"cannot kill the CCN's own router at {position} — "
                    "system coordination would be lost"
                )
            if position not in group:
                group.append(position)
        if not group:
            raise FaultError("a correlated router kill needs at least one router")
        degraded = self._candidate(add_routers=tuple(group))
        return self._execute("router_group", tuple(group), degraded, [], group)

    def inject(self, spec: FaultSpec) -> FaultReport:
        """Resolve and execute one :class:`FaultSpec`.

        A resolved target that is a list (or a tuple of more than one
        victim) executes as a correlated group kill.
        """
        target = spec.target
        if target is None:
            target = spec.chooser(self.network, self.ccn)
        if spec.kind == "link":
            # A single link is a pair of positions; anything else is a group.
            if (
                isinstance(target, tuple)
                and len(target) == 2
                and isinstance(target[0], tuple)
                and target[0]
                and isinstance(target[0][0], int)
            ):
                a, b = target
                return self.kill_link(a, b)
            return self.kill_link_group(list(target))
        if isinstance(target, tuple) and target and isinstance(target[0], int):
            return self.kill_router(target)
        return self.kill_router_group(list(target))

    def _execute(
        self,
        kind: str,
        target: Any,
        degraded: Topology,
        dead_links: List[Link],
        dead_routers: List[Position],
    ) -> FaultReport:
        network = self.network
        ccn = self.ccn

        # Affected admissions must be snapshotted under the *pre-fault*
        # routing: for the packet fabric the displaced streams are the ones
        # whose old paths crossed the dead resource, which the rebuilt table
        # no longer knows.
        affected: List[str] = []
        if ccn is not None:
            affected = ccn.affected_admissions(dead_links, dead_routers, network)

        wire_drops = 0
        for link in dead_links:
            wire_drops += network.fail_link(*link)
        for position in dead_routers:
            wire_drops += network.fail_router(position)
        network.refresh_routing(degraded)

        # A mid-run fault changes the effective topology without anyone
        # assigning selector.topology — re-anchor it here so every cached
        # probe (keyed per application and kind) is dropped and post-fault
        # recommendations are scored on the surviving fabric.
        if self.selector is not None:
            self.selector.topology = degraded

        report = FaultReport(
            cycle=network.kernel.cycle,
            kind=kind,
            target=target,
            wire_drops=wire_drops,
            drop_unit=network.fault_drop_unit,
            affected=affected,
        )
        if ccn is not None:
            report.recovery = ccn.handle_fault(
                degraded,
                dead_links=dead_links,
                dead_routers=dead_routers,
                affected=affected,
                selector=self.selector,
                network=network,
                drain_chunk_cycles=self.drain_chunk_cycles,
                max_drain_cycles=self.max_drain_cycles,
            )
        self.reports.append(report)
        return report


# ---------------------------------------------------------------------------
# Deterministic victim choosers for storm schedules
# ---------------------------------------------------------------------------


def _surviving_links(network: NocBase) -> List[Link]:
    """Undirected surviving links, sorted (the chooser candidate pool)."""
    dead = set(network.dead_links)
    links = {
        _undirected(link)
        for link in network.links
        if _undirected(link) not in dead
    }
    return sorted(links)


def _connectivity_filter(
    network: NocBase, ccn: Optional[CentralCoordinationNode]
) -> FaultInjector:
    # A throwaway injector reuses the candidate validation; it never touches
    # wires, so building one inside a chooser is free of side effects.
    return FaultInjector(network, ccn=None, selector=None)


def random_link_chooser(seed: int = 0) -> Chooser:
    """A chooser killing a pseudo-random surviving, non-disconnecting link.

    Deterministic: the chooser owns a :class:`random.Random` seeded once, so
    repeated injections (one storm schedule) and repeated runs (strict vs.
    auto) walk the identical victim sequence.
    """
    rng = random.Random(seed)

    def choose(network: NocBase, ccn: Optional[CentralCoordinationNode]) -> Link:
        probe = _connectivity_filter(network, ccn)
        candidates = _surviving_links(network)
        rng.shuffle(candidates)
        for link in candidates:
            if probe.survives(link=link):
                return link
        raise FaultError("no surviving link can be killed without a disconnect")

    return choose


def random_router_chooser(seed: int = 0) -> Chooser:
    """A chooser killing a pseudo-random surviving, non-disconnecting router.

    Never picks the CCN's own router (killing the coordinator is game over,
    not a recoverable fault).
    """
    rng = random.Random(seed)

    def choose(network: NocBase, ccn: Optional[CentralCoordinationNode]) -> Position:
        probe = _connectivity_filter(network, ccn)
        forbidden = set(network.dead_routers)
        if ccn is not None:
            forbidden.add(ccn.be_network.ccn_position)
        candidates = sorted(p for p in network.routers if p not in forbidden)
        rng.shuffle(candidates)
        for position in candidates:
            if probe.survives(router=position):
                return position
        raise FaultError("no surviving router can be killed without a disconnect")

    return choose


def loaded_link_chooser(seed: int = 0) -> Chooser:
    """A chooser that prefers links currently carrying admitted traffic.

    Builds a usage count per undirected link from the CCN's allocations
    (lane circuits / slot trains) or, for the packet fabric, from the
    routing paths of every admitted GT channel — then kills the busiest
    killable link (ties and the no-traffic fallback resolved by the seeded
    order of :func:`random_link_chooser`).  Storm campaigns use this to
    guarantee that a fault actually displaces somebody.
    """
    fallback = random_link_chooser(seed)

    def choose(network: NocBase, ccn: Optional[CentralCoordinationNode]) -> Link:
        usage: Dict[Link, int] = {}
        if ccn is not None:
            if ccn.allocator is not None:
                for allocation in ccn.allocator.allocations:
                    for circuit in allocation.circuits:
                        for a, b in zip(circuit.route, circuit.route[1:]):
                            link = _undirected((a, b))
                            usage[link] = usage.get(link, 0) + 1
            else:
                routing = getattr(network, "routing", None)
                for name in ccn.admitted_applications:
                    admission = ccn.admission(name)
                    graph = admission.graph
                    if routing is None or graph is None:
                        continue
                    for channel in graph.channels:
                        src = admission.mapping.position_of(channel.src)
                        dst = admission.mapping.position_of(channel.dst)
                        if src == dst:
                            continue
                        path = routing.path_positions(src, dst)
                        for a, b in zip(path, path[1:]):
                            link = _undirected((a, b))
                            usage[link] = usage.get(link, 0) + 1
        if usage:
            probe = _connectivity_filter(network, ccn)
            dead = {_undirected(link) for link in network.dead_links}
            ranked = sorted(usage.items(), key=lambda item: (-item[1], item[0]))
            for link, _ in ranked:
                if link not in dead and probe.survives(link=link):
                    return link
        return fallback(network, ccn)

    return choose


# ---------------------------------------------------------------------------
# Correlated fault models (row cuts, power domains)
# ---------------------------------------------------------------------------


def row_cut_chooser(seed: int = 0, row: Optional[int] = None) -> Chooser:
    """A chooser severing every surviving horizontal link of one mesh row.

    Models a physical cut trace through the die: all east–west wires of the
    chosen row die in the *same* fault event.  The row is drawn from the
    seeded RNG among rows that still have horizontal links (or pinned with
    *row*); links whose loss would disconnect the survivors — even jointly
    with the rest of the group — are left out, and a row whose whole cut
    set validates to empty is skipped.  Deterministic like every chooser
    here, so strict/auto/event/vector replays stay bit-identical.
    """
    rng = random.Random(seed)

    def choose(
        network: NocBase, ccn: Optional[CentralCoordinationNode]
    ) -> List[Link]:
        probe = _connectivity_filter(network, ccn)
        surviving = set(_surviving_links(network))
        by_row: Dict[int, List[Link]] = {}
        for (a, b) in surviving:
            if a[1] == b[1]:  # horizontal: same y at both ends
                by_row.setdefault(a[1], []).append((a, b))
        if row is not None:
            candidate_rows = [row] if row in by_row else []
        else:
            candidate_rows = sorted(by_row)
            rng.shuffle(candidate_rows)
        for y in candidate_rows:
            cut: List[Link] = []
            for link in sorted(by_row[y]):
                if probe.survives(links=tuple(cut + [link])):
                    cut.append(link)
            if cut:
                return cut
        raise FaultError("no row has a killable set of horizontal links left")

    return choose


def region_chooser(
    seed: int = 0,
    width: int = 2,
    height: int = 2,
    region: Optional[Position] = None,
) -> Chooser:
    """A chooser killing every surviving router in a *width*×*height* window.

    Models a power-domain failure: one supply rail browns out and takes a
    rectangular block of routers (and all their incident links) down
    together.  The window origin is drawn from the seeded RNG among origins
    whose cumulative kill keeps the survivors connected (or pinned with
    *region*); the CCN's own router is never included, and routers whose
    loss would jointly disconnect the fabric are left out of the group.
    """
    rng = random.Random(seed)

    def choose(
        network: NocBase, ccn: Optional[CentralCoordinationNode]
    ) -> List[Position]:
        probe = _connectivity_filter(network, ccn)
        forbidden = set(network.dead_routers)
        if ccn is not None:
            forbidden.add(ccn.be_network.ccn_position)
        alive = sorted(p for p in network.routers if p not in forbidden)
        if not alive:
            raise FaultError("no surviving router left for a region kill")
        if region is not None:
            origins = [region]
        else:
            origins = sorted({(x, y) for x, y in alive})
            rng.shuffle(origins)
        for x0, y0 in origins:
            window = [
                p
                for p in alive
                if x0 <= p[0] < x0 + width and y0 <= p[1] < y0 + height
            ]
            group: List[Position] = []
            for position in window:
                if probe.survives(routers=tuple(group + [position])):
                    group.append(position)
            if group:
                return group
        raise FaultError("no region window has a killable router set left")

    return choose
