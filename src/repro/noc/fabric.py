"""Topology-generic network fabric shared by every NoC kind.

:class:`~repro.noc.network.CircuitSwitchedNoC` and
:class:`~repro.noc.packet_network.PacketSwitchedNoC` assemble the same
skeleton — one router per topology position, one directed link per topology
edge, rx/tx bundles attached in pairs, routers registered with the simulation
kernel, a stream registry and the power/area/activity/energy reporting the
experiments read.  :class:`NocBase` owns that skeleton once; a concrete
network only decides *which* router and link to build and how delivered words
are counted.

The :func:`build_network` factory constructs either network kind on any
:class:`~repro.noc.topology.Topology` by name, which is what the topology
benchmarks and tests use to sweep mesh/torus/degraded fabrics without caring
about the concrete class.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Tuple, Type, TypeVar

from repro.common import ConfigurationError, ReproError
from repro.energy.activity import ActivityCounters
from repro.energy.power import PowerBreakdown
from repro.energy.technology import TSMC_130NM_LVHP, Technology
from repro.noc.topology import Position, Topology
from repro.sim.engine import SimulationKernel

__all__ = [
    "NocBase",
    "WordSource",
    "register_network_kind",
    "network_kinds",
    "resolve_network_kind",
    "build_network",
]

WordSource = Callable[[], int]


class NocBase:
    """A complete network on an arbitrary topology: routers, links, kernel.

    Subclasses implement :meth:`_build_router` / :meth:`_build_link` (the two
    construction decisions that differ between fabrics) and
    :meth:`_stream_received` (how delivery is observed); everything else —
    wiring, execution, statistics and the energy accounting of the mesh
    experiments — is shared here.
    """

    #: Human-readable fabric kind, e.g. ``"circuit_switched"``.
    kind: str = "abstract"
    #: Name under which :meth:`merged_activity` folds the router counters.
    activity_name: str = "network"

    def __init__(
        self,
        topology: Topology,
        frequency_hz: float,
        data_width: int,
        tech: Technology = TSMC_130NM_LVHP,
        schedule: str = "auto",
    ) -> None:
        self.topology = topology
        #: Backwards-compatible alias; the attribute predates non-mesh fabrics.
        self.mesh = topology
        self.frequency_hz = frequency_hz
        self.data_width = data_width
        self.tech = tech
        self.kernel = SimulationKernel(frequency_hz, schedule=schedule)

        self.routers: Dict[Position, Any] = {}
        for position in topology.positions():
            self.routers[position] = self._build_router(position)

        # One directed link per topology edge.
        self.links: Dict[Tuple[Position, Position], Any] = {}
        for src, dst in topology.directed_links():
            self.links[(src, dst)] = self._build_link(src, dst)

        # Attach the links to the routers: the link (a -> b) is a's outgoing
        # bundle on the port towards b, and b's incoming bundle on the
        # opposite port.
        for position, router in self.routers.items():
            for port, neighbor in topology.neighbors(position).items():
                tx = self.links[(position, neighbor)]
                rx = self.links[(neighbor, position)]
                router.attach_link(port, rx, tx)

        # Streams are appended to the kernel after the routers so that their
        # pacing decisions see the routers' committed state of the same cycle.
        for router in self.routers.values():
            self.kernel.add(router)

        self.streams: Dict[str, Any] = {}

    # -- construction hooks -----------------------------------------------------------

    def _build_router(self, position: Position) -> Any:
        """Create the router for *position* (registered and wired by the base)."""
        raise NotImplementedError

    def _build_link(self, src: Position, dst: Position) -> Any:
        """Create the directed link channel from *src* to *dst*."""
        raise NotImplementedError

    def _stream_received(self, endpoints: Any) -> int:
        """Words observed as delivered for one registered stream."""
        raise NotImplementedError

    # -- admission ------------------------------------------------------------------------

    def _new_admission_controller(self) -> Any:
        """Create this network's admission controller (kinds that need one)."""
        raise ConfigurationError(
            f"{self.kind} network performs no admission control"
        )

    @property
    def admission(self) -> Any:
        """The network's own admission controller, created on first use.

        Circuit-switched networks hand out lanes
        (:class:`~repro.noc.path_allocation.LaneAllocator`), TDMA networks
        hand out aligned slots
        (:class:`~repro.noc.slot_table.SlotTableAllocator`); packet-switched
        networks need no admission and raise.  External controllers (the CCN)
        may still be used instead — this one exists so that kind-agnostic
        harnesses can admit channels without knowing the resource model.
        """
        controller = self.__dict__.get("_admission")
        if controller is None:
            controller = self._new_admission_controller()
            self._admission = controller
        return controller

    def attach_channel(
        self,
        name: str,
        src: Position,
        dst: Position,
        bandwidth_mbps: float,
        word_source: "WordSource",
        load: float = 1.0,
    ) -> Any:
        """Admit one guaranteed-throughput channel and attach its word stream.

        The kind-agnostic entry point of the experiments harness: every
        network kind performs whatever admission/configuration it needs
        (lane circuits, slot schedules, or nothing at all for packet
        switching) and registers a paced stream from the tile at *src* to
        the tile at *dst*.
        """
        raise NotImplementedError

    # -- access ---------------------------------------------------------------------------

    def router_at(self, position: Position) -> Any:
        """The router at *position*."""
        try:
            return self.routers[position]
        except KeyError:
            raise ConfigurationError(f"no router at position {position}") from None

    def link(self, src: Position, dst: Position) -> Any:
        """The directed channel from *src* to *dst*."""
        try:
            return self.links[(src, dst)]
        except KeyError:
            raise ConfigurationError(f"no link from {src} to {dst}") from None

    # -- execution ------------------------------------------------------------------------

    def run(self, cycles: int) -> int:
        """Advance the whole network by *cycles* clock cycles."""
        return self.kernel.run(cycles)

    def run_for_time(self, seconds: float) -> int:
        """Advance the whole network by *seconds* of simulated time."""
        return self.kernel.run_for_time(seconds)

    # -- reporting --------------------------------------------------------------------------

    def stream_statistics(self) -> Dict[str, Dict[str, int]]:
        """Words sent / received per registered stream."""
        return {
            name: {"sent": ep.words_sent, "received": self._stream_received(ep)}
            for name, ep in self.streams.items()
        }

    def total_power(self, frequency_hz: Optional[float] = None) -> PowerBreakdown:
        """Aggregate power of all routers (links and tiles excluded, as in the paper)."""
        frequency = frequency_hz if frequency_hz is not None else self.frequency_hz
        return PowerBreakdown.total_of(
            router.power(frequency) for router in self.routers.values()
        )

    def router_power(self, position: Position, frequency_hz: Optional[float] = None) -> PowerBreakdown:
        """Power of the single router at *position*."""
        frequency = frequency_hz if frequency_hz is not None else self.frequency_hz
        return self.router_at(position).power(frequency)

    def merged_activity(self) -> ActivityCounters:
        """Activity counters of all routers folded together."""
        return ActivityCounters.merged(
            (router.activity for router in self.routers.values()), name=self.activity_name
        )

    def total_area_mm2(self) -> float:
        """Total router area of the network (Table 4 per-router area × routers)."""
        return sum(router.total_area_mm2 for router in self.routers.values())

    def energy_per_delivered_bit_pj(self, frequency_hz: Optional[float] = None) -> float:
        """Average network energy per delivered payload bit (mesh experiments)."""
        frequency = frequency_hz if frequency_hz is not None else self.frequency_hz
        delivered_bits = sum(
            self._stream_received(ep) for ep in self.streams.values()
        ) * self.data_width
        if delivered_bits == 0:
            return float("inf")
        duration_s = self.kernel.cycle / frequency
        power = self.total_power(frequency)
        return power.total_uw * duration_s * 1e6 / delivered_bits


# ---------------------------------------------------------------------------
# Factory registry
# ---------------------------------------------------------------------------

_NETWORK_KINDS: Dict[str, Type[NocBase]] = {}

N = TypeVar("N", bound=Type[NocBase])


def register_network_kind(*names: str) -> Callable[[N], N]:
    """Class decorator registering a network under one or more kind names."""

    def decorator(cls: N) -> N:
        for name in names:
            _NETWORK_KINDS[name.lower()] = cls
        return cls

    return decorator


def _ensure_registered() -> None:
    # The concrete networks register themselves at import time; importing
    # them lazily here keeps fabric <- network dependencies one-directional.
    import repro.noc.network  # noqa: F401
    import repro.noc.packet_network  # noqa: F401
    import repro.noc.gt_network  # noqa: F401


def network_kinds() -> List[str]:
    """All registered kind names, sorted (aliases included)."""
    _ensure_registered()
    return sorted(_NETWORK_KINDS)


def resolve_network_kind(kind: str) -> Type[NocBase]:
    """The network class registered under *kind* (accepting every alias)."""
    _ensure_registered()
    try:
        return _NETWORK_KINDS[kind.lower()]
    except KeyError:
        raise ReproError(
            f"unknown network kind {kind!r}; available: {', '.join(sorted(_NETWORK_KINDS))}"
        ) from None


def build_network(kind: str, topology: Topology, **params: Any) -> NocBase:
    """Construct a network of *kind* on *topology*.

    ``kind`` accepts the canonical names and the short aliases used by
    :func:`repro.experiments.harness.run_scenario` (``circuit``/``cs``,
    ``packet``/``ps``, ``gt``/``aethereal``/``tdma``);
    ``params`` are forwarded to the network constructor.
    """
    return resolve_network_kind(kind)(topology, **params)
