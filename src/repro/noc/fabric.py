"""Topology-generic network fabric shared by every NoC kind.

:class:`~repro.noc.network.CircuitSwitchedNoC` and
:class:`~repro.noc.packet_network.PacketSwitchedNoC` assemble the same
skeleton — one router per topology position, one directed link per topology
edge, rx/tx bundles attached in pairs, routers registered with the simulation
kernel, a stream registry and the power/area/activity/energy reporting the
experiments read.  :class:`NocBase` owns that skeleton once; a concrete
network only decides *which* router and link to build and how delivered words
are counted.

The :func:`build_network` factory constructs either network kind on any
:class:`~repro.noc.topology.Topology` by name, which is what the topology
benchmarks and tests use to sweep mesh/torus/degraded fabrics without caring
about the concrete class.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple, Type, TypeVar

from repro.common import ConfigurationError, ReproError
from repro.energy.activity import ActivityCounters
from repro.energy.power import PowerBreakdown
from repro.energy.technology import TSMC_130NM_LVHP, Technology
from repro.noc.topology import IrregularMesh, Position, Topology
from repro.noc.word_proxy import WordSourceRegistry
from repro.sim.engine import SimulationKernel

__all__ = [
    "NocBase",
    "WordSource",
    "register_network_kind",
    "network_kinds",
    "resolve_network_kind",
    "build_network",
]

WordSource = Callable[[], int]


class NocBase:
    """A complete network on an arbitrary topology: routers, links, kernel.

    Subclasses implement :meth:`_build_router` / :meth:`_build_link` (the two
    construction decisions that differ between fabrics) and
    :meth:`_stream_received` (how delivery is observed); everything else —
    wiring, execution, statistics and the energy accounting of the mesh
    experiments — is shared here.
    """

    #: Human-readable fabric kind, e.g. ``"circuit_switched"``.
    kind: str = "abstract"
    #: Name under which :meth:`merged_activity` folds the router counters.
    activity_name: str = "network"
    #: True for kinds whose channels must be admitted before they can flow
    #: (lane circuits, slot schedules); False for contention-based fabrics.
    performs_admission: bool = False
    #: Bits of one configuration command written into a router of this kind
    #: (what the CCN ships over the best-effort network per circuit hop);
    #: 0 when the kind needs no per-connection configuration.
    config_command_bits: int = 0
    #: What one wire-level unit swallowed by a dead link is called for this
    #: kind (``"phit"`` / ``"flit"`` / ``"word"``) — the unit of
    #: :meth:`fault_drops`.
    fault_drop_unit: str = "word"
    #: The columnar batch plane under ``schedule="vector"`` (kinds that
    #: support one install it in :meth:`_register_with_kernel`); ``None``
    #: everywhere else.  Fault injection must desynchronise it before
    #: touching wires — see :meth:`fail_link` / :meth:`fail_router`.
    vector_plane: Optional[Any] = None

    def __init__(
        self,
        topology: Topology,
        frequency_hz: float,
        data_width: int,
        tech: Technology = TSMC_130NM_LVHP,
        schedule: str = "auto",
        region: Optional[Iterable[Position]] = None,
    ) -> None:
        self.topology = topology
        #: Backwards-compatible alias; the attribute predates non-mesh fabrics.
        self.mesh = topology
        self.frequency_hz = frequency_hz
        self.data_width = data_width
        self.tech = tech
        #: Shard region (``None`` = the whole topology).  A region network
        #: physically builds only its own routers, but keeps the *full*
        #: topology for admission/routing decisions, so every shard of a
        #: deterministically replayed configuration sequence computes the
        #: identical allocations (:mod:`repro.sim.shard`).
        self.region: Optional[frozenset] = (
            frozenset(region) if region is not None else None
        )
        self.kernel = SimulationKernel(frequency_hz, schedule=schedule)

        self.routers: Dict[Position, Any] = {}
        for position in topology.positions():
            if self.region is None or position in self.region:
                self.routers[position] = self._build_router(position)

        # One directed link per topology edge; a region network materialises
        # every link with at least one local endpoint, so each cut link has a
        # mirror copy in both adjacent shards (the boundary-proxy pair).
        self.links: Dict[Tuple[Position, Position], Any] = {}
        for src, dst in topology.directed_links():
            if self.region is None or src in self.region or dst in self.region:
                self.links[(src, dst)] = self._build_link(src, dst)

        # Attach the links to the routers: the link (a -> b) is a's outgoing
        # bundle on the port towards b, and b's incoming bundle on the
        # opposite port.
        for position, router in self.routers.items():
            for port, neighbor in topology.neighbors(position).items():
                tx = self.links[(position, neighbor)]
                rx = self.links[(neighbor, position)]
                router.attach_link(port, rx, tx)

        # Streams are appended to the kernel after the routers so that their
        # pacing decisions see the routers' committed state of the same cycle.
        self._register_with_kernel()

        self.streams: Dict[str, Any] = {}

        #: Shard-exact pull routing for word sources shared between
        #: channels (:mod:`repro.noc.word_proxy`).  Region networks only;
        #: a single-process network pulls its sources directly.
        self._word_registry: Optional[WordSourceRegistry] = (
            WordSourceRegistry(self.kernel) if self.region is not None else None
        )

        #: Undirected links killed at run time (:meth:`fail_link`).
        self.dead_links: set = set()
        #: Router positions killed at run time (:meth:`fail_router`).
        self.dead_routers: set = set()

    def is_local(self, position: Position) -> bool:
        """True when *position* lies in this network's shard region (or no region is set)."""
        return self.region is None or position in self.region

    def _register_with_kernel(self) -> None:
        """Register the routers with the simulation kernel.

        The default puts every router on the schedule individually; kinds
        with a columnar fast path override this to register one
        :class:`repro.sim.vector.VectorPlane` in their place under
        ``schedule="vector"`` (the routers then execute as plane members,
        bit-identically).  Runs before any stream endpoint is added, so the
        registration-index ordering routers-before-streams is preserved
        either way.
        """
        for router in self.routers.values():
            self.kernel.add(router)

    # -- construction hooks -----------------------------------------------------------

    def _build_router(self, position: Position) -> Any:
        """Create the router for *position* (registered and wired by the base)."""
        raise NotImplementedError

    def _build_link(self, src: Position, dst: Position) -> Any:
        """Create the directed link channel from *src* to *dst*."""
        raise NotImplementedError

    def _stream_received(self, endpoints: Any) -> int:
        """Words observed as delivered for one registered stream."""
        raise NotImplementedError

    def _stream_drained(self, endpoints: Any) -> bool:
        """True when provably no word of this stream is still in flight.

        Kind-specific conservation check used by :meth:`drain_streams` to
        finish a teardown drain the moment the fabric is empty, instead of
        waiting for a full silent polling stride.  The conservative default
        (``False``) falls back to delivery-stability polling; kinds with
        exact injection/delivery counters override it.
        """
        return False

    # -- admission ------------------------------------------------------------------------

    def _new_admission_controller(self) -> Any:
        """Create this network's admission controller (kinds that need one)."""
        raise ConfigurationError(
            f"{self.kind} network performs no admission control"
        )

    @classmethod
    def default_admission_controller(cls, topology: Topology) -> Any:
        """A fresh admission controller with this kind's default geometry.

        The class-level counterpart of :attr:`admission` — what an *external*
        resource manager (the CCN) uses to plan admissions for this kind
        without building a live network first.  ``None`` for kinds that
        perform no admission control (packet switching).
        """
        return None

    @property
    def admission(self) -> Any:
        """The network's own admission controller, created on first use.

        Circuit-switched networks hand out lanes
        (:class:`~repro.noc.path_allocation.LaneAllocator`), TDMA networks
        hand out aligned slots
        (:class:`~repro.noc.slot_table.SlotTableAllocator`); packet-switched
        networks need no admission and raise.  External controllers (the CCN)
        may still be used instead — this one exists so that kind-agnostic
        harnesses can admit channels without knowing the resource model.
        """
        controller = self.__dict__.get("_admission")
        if controller is None:
            controller = self._new_admission_controller()
            self._admission = controller
        return controller

    # -- configuration ------------------------------------------------------------------

    def apply_allocation(self, allocation: Any) -> None:
        """Program one channel allocation into the routers (no-op by default).

        Kinds with admission (lane circuits, slot schedules) override this;
        contention-based kinds have nothing to configure.
        """

    def remove_allocation(self, allocation: Any) -> None:
        """Erase one channel allocation from the routers again (no-op by default)."""

    # -- traffic ------------------------------------------------------------------------

    def attach_channel(
        self,
        name: str,
        src: Position,
        dst: Position,
        bandwidth_mbps: float,
        word_source: "WordSource",
        load: float = 1.0,
        allocation: Any = None,
    ) -> Any:
        """Admit one guaranteed-throughput channel and attach its word stream.

        The kind-agnostic entry point of the experiments harness: every
        network kind performs whatever admission/configuration it needs
        (lane circuits, slot schedules, or nothing at all for packet
        switching) and registers a paced stream from the tile at *src* to
        the tile at *dst*.

        When *allocation* is given the caller (the CCN) has already admitted
        the channel and programmed the routers; only the paced stream
        endpoints are attached then.
        """
        raise NotImplementedError

    def _register_stream_source(
        self,
        name: str,
        word_source: "WordSource",
        local: bool,
        model_factory: Callable[[], Any],
    ) -> "WordSource":
        """Route one stream's word source through the shard pull registry.

        Every ``add_stream`` of a kind calls this exactly once per stream,
        in the replicated configuration order, flagging whether the
        stream's driver is local to this shard; *model_factory* builds the
        kind's exact remote pull model (only invoked when remote).  On a
        single-process network this is the identity — the driver pulls the
        source directly.
        """
        registry = self._word_registry
        if registry is None:
            return word_source
        model = None if local else model_factory()
        return registry.register(name, word_source, local, model)

    def _deactivate_stream_source(self, name: str) -> None:
        """Tell the pull registry this stream's driver left the kernel."""
        registry = self._word_registry
        if registry is not None:
            registry.deactivate(name, self.kernel.cycle)

    def _remove_component(self, component: Any) -> None:
        """Take one endpoint component off the kernel (tolerates absence).

        Halting a stream removes its source driver early; the later full
        detach must not trip over the already-removed component.
        """
        if component is not None and component._scheduler is self.kernel:
            self.kernel.remove(component)

    def _detach_stream_components(self, endpoints: Any) -> None:
        """Take one stream's driver/sink components off the kernel."""
        raise NotImplementedError

    def halt_stream(self, name: str) -> None:
        """Stop one stream's injection (its source driver leaves the kernel).

        The first phase of a clean run-time teardown: the application stops
        producing, but the sink endpoints stay attached so words already in
        the fabric can drain before :meth:`detach_stream` removes the rest
        and the configuration is torn down.
        """
        try:
            endpoints = self.streams[name]
        except KeyError:
            raise ConfigurationError(f"no stream named {name!r}") from None
        self._remove_component(getattr(endpoints, "source", None))
        self._deactivate_stream_source(name)

    def detach_stream(self, name: str) -> Any:
        """Remove one registered stream's endpoints from the network.

        The run-time counterpart of stream attachment: the departing
        application's drivers and sinks leave the simulation kernel (their
        names become reusable), while routers, links and any admitted
        configuration stay untouched — tearing those down is
        :meth:`remove_allocation` / :meth:`detach_channel` territory.
        Returns the removed endpoints record.
        """
        try:
            endpoints = self.streams.pop(name)
        except KeyError:
            raise ConfigurationError(f"no stream named {name!r}") from None
        self._detach_stream_components(endpoints)
        self._deactivate_stream_source(name)
        return endpoints

    def detach_channel(self, name: str, drain_cycles: int = 0) -> None:
        """Tear one :meth:`attach_channel` channel fully down again.

        Removes every stream the channel registered (a lane-striped channel
        registers ``name#i`` per lane circuit), erases the router
        configuration and releases the admitted resources — the inverse of
        :meth:`attach_channel` for channels admitted through the network's
        own controller.  A non-zero *drain_cycles* halts injection first and
        runs the network that long so in-flight words reach their sinks
        before the configuration disappears under them (the CCN's
        :meth:`~repro.noc.ccn.CentralCoordinationNode.release` drains
        adaptively instead).
        """
        stream_names = [
            n for n in self.streams if n == name or n.startswith(f"{name}#")
        ]
        if not stream_names:
            raise ConfigurationError(f"no stream named {name!r}")
        if drain_cycles:
            for stream_name in stream_names:
                self.halt_stream(stream_name)
            self.run(drain_cycles)
        for stream_name in stream_names:
            self.detach_stream(stream_name)
        if self.performs_admission:
            allocation = self.admission.allocation(name)
            self.remove_allocation(allocation)
            self.admission.release(name)

    def drain_streams(
        self,
        names: List[str],
        check_every: int = 64,
        max_cycles: int = 4096,
    ) -> None:
        """Run until the named streams stop delivering new words.

        The drain of a clean teardown: injection must already be halted
        (:meth:`halt_stream`); the network then runs in *check_every*-cycle
        strides until the streams are provably empty.  Each check first
        applies the kind's exact conservation predicate
        (:meth:`_stream_drained`: every injected word reached its sink), so
        a clean drain ends at the first stride where the fabric is empty.
        Streams whose words can never arrive — a fault broke the path —
        fall back to delivery-stability polling: one full stride delivering
        nothing new on any named stream.  Built on
        :meth:`SimulationKernel.run_until` with the same stride, so the
        optimised schedulers leap across the idle tail of each stride
        instead of single-stepping it.  Gives up silently after
        *max_cycles* (a bounded teardown deadline, not an error).
        """
        if not names:
            return
        start = self.kernel.cycle
        previous: Optional[List[int]] = None

        def settled(cycle: int) -> bool:
            nonlocal previous
            if cycle - start >= max_cycles:
                return True  # drain deadline: teardown proceeds regardless
            streams = self.streams
            if all(
                name in streams and self._stream_drained(streams[name])
                for name in names
            ):
                return True  # exact: conservation holds, nothing in flight
            stats = self.stream_statistics()
            current = [stats[name]["received"] for name in names]
            if current == previous:
                return True
            previous = current
            return False

        # The deadline is part of the predicate, so run_until never raises
        # for it — a SimulationError out of here is a real kernel error
        # (wake during a leap, empty kernel) and must stay loud.
        self.kernel.run_until(
            settled, max_cycles=max_cycles + check_every, check_every=check_every
        )

    # -- faults -----------------------------------------------------------------------------

    def fail_link(self, a: Position, b: Position) -> int:
        """Kill the bidirectional link between *a* and *b* at the wire level.

        Both directed wire bundles fall dead: in-flight payload is dropped
        (and counted on the links), and every future drive is swallowed.
        Returns the number of wire-level units (:attr:`fault_drop_unit`)
        that were in flight.  Pure wire surgery — deriving the degraded
        topology view and rebuilding routing is
        :class:`repro.noc.faults.FaultInjector` territory.
        """
        if (a, b) not in self.links and (b, a) not in self.links:
            if self.region is None:
                raise ConfigurationError(f"no link between {a} and {b}")
            # A shard without a local copy still records the fault so its
            # degraded-topology view matches every other shard's.
            self.dead_links.add((a, b) if a <= b else (b, a))
            return 0
        if self.vector_plane is not None:
            # The plane owns the internal wire state while batching; bring
            # the wires back to scalar coherence (so the in-flight drop
            # count reads true values) and force a recompile that
            # reclassifies the dead bundle onto the scalar drive path.
            self.vector_plane.desync()
        dropped = 0
        for key in ((a, b), (b, a)):
            link = self.links.get(key)
            if link is not None:
                lost = link.fail()
                # Cut links exist as mirror copies in both adjacent shards
                # and both mirrors hold the same in-flight state; counting
                # only the copy whose driver is local keeps the network-wide
                # drop total exact (full networks own every driver).
                if key[0] in self.routers:
                    dropped += lost
        self.dead_links.add((a, b) if a <= b else (b, a))
        return dropped

    def fail_router(self, position: Position) -> int:
        """Kill the router at *position*: every incident link dies with it.

        The dead router keeps its clock (an un-gated dead macro still burns
        idle power) but can no longer exchange words with any neighbour —
        residual state drains onto its dead links and is counted there.
        Returns the in-flight wire units lost on the incident links.
        """
        if position not in self.routers and self.region is None:
            raise ConfigurationError(f"no router at position {position}")
        if self.vector_plane is not None:
            self.vector_plane.desync()
        dropped = 0
        for (src, dst), link in self.links.items():
            if position in (src, dst):
                lost = link.fail()
                if src in self.routers:
                    dropped += lost
                self.dead_links.add((src, dst) if src <= dst else (dst, src))
        self.dead_routers.add(position)
        return dropped

    def degraded_topology(self) -> Topology:
        """The construction topology minus every run-time-killed resource.

        Folds run-time faults into any static :class:`IrregularMesh`
        decoration the network was built with, so the view stays a single
        decorator over the original base.  Raises the topology layer's
        ``ValueError`` when the survivors are disconnected — the
        :class:`~repro.noc.faults.FaultInjector` pre-validates and converts
        that into a :class:`~repro.common.FaultError` naming the cut.
        """
        if not self.dead_links and not self.dead_routers:
            return self.topology
        base = self.topology
        broken_links = set(self.dead_links)
        broken_routers = set(self.dead_routers)
        if isinstance(base, IrregularMesh):
            broken_links |= set(base.broken_links)
            broken_routers |= set(base.broken_routers)
            base = base.base
        return IrregularMesh(
            base, tuple(sorted(broken_links)), tuple(sorted(broken_routers))
        )

    def refresh_routing(self, degraded: Topology) -> None:
        """Re-derive any routing state from the *degraded* topology view.

        No-op by default: circuit and TDMA fabrics route at admission time,
        so only source-routed state held by the network itself (the packet
        fabric's routing table) needs refreshing after a fault.
        """

    def fault_drops(self) -> int:
        """Wire-level units swallowed by dead links (:attr:`fault_drop_unit`).

        Counted on the directed copies whose driving router is local, so the
        per-shard totals of a sharded run add up to the single-network figure
        (a cut link's mirror copy would otherwise be counted twice).
        """
        return sum(
            getattr(link, "dropped", 0)
            for key, link in self.links.items()
            if key[0] in self.routers
        )

    # -- access ---------------------------------------------------------------------------

    def router_at(self, position: Position) -> Any:
        """The router at *position*."""
        try:
            return self.routers[position]
        except KeyError:
            raise ConfigurationError(f"no router at position {position}") from None

    def link(self, src: Position, dst: Position) -> Any:
        """The directed channel from *src* to *dst*."""
        try:
            return self.links[(src, dst)]
        except KeyError:
            raise ConfigurationError(f"no link from {src} to {dst}") from None

    # -- execution ------------------------------------------------------------------------

    def run(self, cycles: int) -> int:
        """Advance the whole network by *cycles* clock cycles."""
        return self.kernel.run(cycles)

    def run_for_time(self, seconds: float) -> int:
        """Advance the whole network by *seconds* of simulated time."""
        return self.kernel.run_for_time(seconds)

    # -- reporting --------------------------------------------------------------------------

    def stream_statistics(self) -> Dict[str, Dict[str, int]]:
        """Words sent / received per registered stream."""
        return {
            name: {"sent": ep.words_sent, "received": self._stream_received(ep)}
            for name, ep in self.streams.items()
        }

    def total_power(self, frequency_hz: Optional[float] = None) -> PowerBreakdown:
        """Aggregate power of all routers (links and tiles excluded, as in the paper)."""
        frequency = frequency_hz if frequency_hz is not None else self.frequency_hz
        return PowerBreakdown.total_of(
            router.power(frequency) for router in self.routers.values()
        )

    def router_power(self, position: Position, frequency_hz: Optional[float] = None) -> PowerBreakdown:
        """Power of the single router at *position*."""
        frequency = frequency_hz if frequency_hz is not None else self.frequency_hz
        return self.router_at(position).power(frequency)

    def merged_activity(self) -> ActivityCounters:
        """Activity counters of all routers folded together."""
        return ActivityCounters.merged(
            (router.activity for router in self.routers.values()), name=self.activity_name
        )

    def activity_snapshot(self) -> Dict[Position, Tuple[Dict[str, float], int]]:
        """Per-router ``(counters, cycles)`` in plain comparable form.

        The equivalence tests diff this across schedules and against the
        sharded network's cross-shard aggregate
        (:meth:`repro.sim.shard.ShardedNetwork.activity_snapshot`).
        """
        return {
            position: (router.activity.as_dict(), router.activity.cycles)
            for position, router in self.routers.items()
        }

    def total_area_mm2(self) -> float:
        """Total router area of the network (Table 4 per-router area × routers)."""
        return sum(router.total_area_mm2 for router in self.routers.values())

    def energy_per_delivered_bit_pj(self, frequency_hz: Optional[float] = None) -> float:
        """Average network energy per delivered payload bit (mesh experiments)."""
        frequency = frequency_hz if frequency_hz is not None else self.frequency_hz
        delivered_bits = sum(
            self._stream_received(ep) for ep in self.streams.values()
        ) * self.data_width
        if delivered_bits == 0:
            return float("inf")
        duration_s = self.kernel.cycle / frequency
        power = self.total_power(frequency)
        return power.total_uw * duration_s * 1e6 / delivered_bits


# ---------------------------------------------------------------------------
# Factory registry
# ---------------------------------------------------------------------------

_NETWORK_KINDS: Dict[str, Type[NocBase]] = {}

N = TypeVar("N", bound=Type[NocBase])


def register_network_kind(*names: str) -> Callable[[N], N]:
    """Class decorator registering a network under one or more kind names."""

    def decorator(cls: N) -> N:
        for name in names:
            _NETWORK_KINDS[name.lower()] = cls
        return cls

    return decorator


def _ensure_registered() -> None:
    # The concrete networks register themselves at import time; importing
    # them lazily here keeps fabric <- network dependencies one-directional.
    import repro.noc.network  # noqa: F401
    import repro.noc.packet_network  # noqa: F401
    import repro.noc.gt_network  # noqa: F401


def network_kinds() -> List[str]:
    """All registered kind names, sorted (aliases included)."""
    _ensure_registered()
    return sorted(_NETWORK_KINDS)


def resolve_network_kind(kind: str) -> Type[NocBase]:
    """The network class registered under *kind* (accepting every alias)."""
    _ensure_registered()
    try:
        return _NETWORK_KINDS[kind.lower()]
    except KeyError:
        raise ReproError(
            f"unknown network kind {kind!r}; available: {', '.join(sorted(_NETWORK_KINDS))}"
        ) from None


def build_network(kind: str, topology: Topology, **params: Any) -> Any:
    """Construct a network of *kind* on *topology*.

    ``kind`` accepts the canonical names and the short aliases used by
    :func:`repro.experiments.harness.run_scenario` (``circuit``/``cs``,
    ``packet``/``ps``, ``gt``/``aethereal``/``tdma``);
    ``params`` are forwarded to the network constructor.

    ``shards=N`` (with an optional ``partition_mode`` and ``transport``)
    builds the same network partitioned over *N* worker processes instead
    — a :class:`repro.sim.shard.ShardedNetwork` mirroring this reporting
    surface, bit-identical to the single-process network.
    ``transport="auto"`` exchanges boundary frames through shared-memory
    rings where supported, falling back to the parent-routed pipes.
    """
    shards = params.pop("shards", None)
    if shards is not None and shards > 1:
        from repro.sim.shard import ShardedNetwork

        partition_mode = params.pop("partition_mode", "auto")
        transport = params.pop("transport", "auto")
        return ShardedNetwork(
            kind,
            topology,
            shards=shards,
            partition_mode=partition_mode,
            transport=transport,
            **params,
        )
    params.pop("partition_mode", None)
    params.pop("transport", None)
    return resolve_network_kind(kind)(topology, **params)
