"""Lane-level path allocation for the circuit-switched network (Sections 4/5).

The CCN maps every guaranteed-throughput channel of an application onto a
*circuit*: a concatenation of lanes from the source tile's router to the
destination tile's router.  Because lanes are physically separate, an
established circuit never collides with other traffic — which is exactly why
the allocator only has to find lanes that are *free*, not to build a global
time-slot schedule as the Æthereal/SoCBUS style routers must (Section 4; the
slot-schedule counterpart lives in :mod:`repro.noc.slot_table`).

The allocator keeps track of the free lanes of every directed link and of the
free tile-port lanes of every router, finds a shortest path with enough free
lanes on every hop, and emits the per-router hop descriptions from which
:func:`repro.core.configuration.commands_for_connection` builds the 10-bit
configuration commands.  The pool bookkeeping, route search and transactional
release are shared with every other admission kind through
:class:`repro.noc.admission.AdmissionController`; this module only adds the
lane-specific arithmetic and reservation rule.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Tuple

from repro.common import AllocationError, Port, opposite_port
from repro.core.header import phits_per_packet
from repro.noc.admission import AdmissionController
from repro.noc.topology import Position, Topology

__all__ = ["LaneHop", "LaneCircuit", "CircuitAllocation", "LaneAllocator"]


@dataclass(frozen=True)
class LaneHop:
    """How a circuit traverses one router: input lane → output lane."""

    position: Position
    in_port: Port
    in_lane: int
    out_port: Port
    out_lane: int

    def as_tuple(self) -> Tuple[Port, int, Port, int]:
        """The ``(in_port, in_lane, out_port, out_lane)`` tuple used for commands."""
        return (self.in_port, self.in_lane, self.out_port, self.out_lane)


@dataclass(frozen=True)
class LaneCircuit:
    """One physical lane-level circuit from a source tile to a destination tile."""

    channel_name: str
    index: int
    src: Position
    dst: Position
    route: Tuple[Position, ...]
    hops: Tuple[LaneHop, ...]

    @property
    def source_tile_lane(self) -> int:
        """Tile-port lane used at the source router."""
        return self.hops[0].in_lane

    @property
    def destination_tile_lane(self) -> int:
        """Tile-port lane used at the destination router."""
        return self.hops[-1].out_lane

    @property
    def hop_count(self) -> int:
        """Number of routers the circuit passes through."""
        return len(self.hops)


@dataclass
class CircuitAllocation:
    """All circuits allocated for one application channel."""

    channel_name: str
    src: Position
    dst: Position
    bandwidth_mbps: float
    circuits: List[LaneCircuit] = field(default_factory=list)

    @property
    def is_local(self) -> bool:
        """True when source and destination share a tile (no network resources)."""
        return self.src == self.dst

    @property
    def lanes_used(self) -> int:
        """Number of parallel lane circuits allocated."""
        return len(self.circuits)

    @property
    def hop_count(self) -> int:
        """Router hops of the (common) route, 0 for tile-local channels."""
        return self.circuits[0].hop_count if self.circuits else 0


class LaneAllocator(AdmissionController):
    """Tracks free lanes and allocates circuits on any topology.

    The allocator works purely on the topology's directed-link graph, so the
    same code routes circuits over the paper's mesh, across a torus
    wraparound link, or around the missing links of a degraded mesh.
    """

    unit_name = "lane"

    def __init__(
        self,
        topology: Topology,
        lanes_per_link: int = 4,
        lane_width: int = 4,
        data_width: int = 16,
    ) -> None:
        if lanes_per_link < 1:
            raise ValueError("lanes_per_link must be positive")
        super().__init__(topology, lanes_per_link)
        self.lanes_per_link = lanes_per_link
        self.lane_width = lane_width
        self.data_width = data_width

    # -- capacity arithmetic -----------------------------------------------------------

    def lane_capacity_mbps(self, frequency_hz: float) -> float:
        """Payload bandwidth of one lane at the given network clock.

        One lane carries ``lane_width`` bits per cycle, of which the data word
        occupies ``data_width`` out of every ``data_width + header`` bits
        (e.g. 16 of 20: 80 Mbit/s at 25 MHz, 3.44 Gbit/s at 1075 MHz).
        """
        if frequency_hz <= 0:
            raise ValueError("frequency must be positive")
        phits = phits_per_packet(self.data_width, self.lane_width)
        efficiency = self.data_width / (phits * self.lane_width)
        return self.lane_width * frequency_hz * efficiency / 1e6

    def lanes_required(self, bandwidth_mbps: float, frequency_hz: float) -> int:
        """Parallel lanes needed to carry *bandwidth_mbps* at *frequency_hz*."""
        if bandwidth_mbps < 0:
            raise ValueError("bandwidth must be non-negative")
        if bandwidth_mbps == 0:
            return 1
        return max(1, math.ceil(bandwidth_mbps / self.lane_capacity_mbps(frequency_hz)))

    units_required = lanes_required
    unit_capacity_mbps = lane_capacity_mbps

    # -- queries ---------------------------------------------------------------------------

    def free_lanes(self, src: Position, dst: Position) -> int:
        """Number of free lanes on the directed link from *src* to *dst*."""
        return self.free_units(src, dst)

    # -- allocation --------------------------------------------------------------------------

    def _new_allocation(
        self, channel_name: str, src: Position, dst: Position, bandwidth_mbps: float
    ) -> CircuitAllocation:
        return CircuitAllocation(channel_name, src, dst, bandwidth_mbps)

    def _allocate_circuits(
        self, channel_name: str, route: List[Position], units_needed: int
    ) -> List[LaneCircuit]:
        src, dst = route[0], route[-1]
        lanes_needed = units_needed

        if len(self._free_tile_tx[src]) < lanes_needed:
            raise AllocationError(
                f"source tile at {src} has only {len(self._free_tile_tx[src])} free "
                f"outgoing lane(s), {lanes_needed} needed for {channel_name!r}"
            )
        if len(self._free_tile_rx[dst]) < lanes_needed:
            raise AllocationError(
                f"destination tile at {dst} has only {len(self._free_tile_rx[dst])} free "
                f"incoming lane(s), {lanes_needed} needed for {channel_name!r}"
            )

        reserved_links: List[Tuple[Tuple[Position, Position], int]] = []
        reserved_tx: List[int] = []
        reserved_rx: List[int] = []
        try:
            circuits: List[LaneCircuit] = []
            for index in range(lanes_needed):
                tile_tx_lane = min(self._free_tile_tx[src])
                self._free_tile_tx[src].discard(tile_tx_lane)
                reserved_tx.append(tile_tx_lane)
                tile_rx_lane = min(self._free_tile_rx[dst])
                self._free_tile_rx[dst].discard(tile_rx_lane)
                reserved_rx.append(tile_rx_lane)

                link_lanes: List[int] = []
                for a, b in zip(route, route[1:]):
                    free = self._free_link_units[(a, b)]
                    if not free:
                        raise AllocationError(
                            f"link {a}->{b} ran out of lanes while allocating {channel_name!r}"
                        )
                    lane = min(free)
                    free.discard(lane)
                    reserved_links.append(((a, b), lane))
                    link_lanes.append(lane)

                hops: List[LaneHop] = []
                for hop_index, position in enumerate(route):
                    if hop_index == 0:
                        in_port, in_lane = Port.TILE, tile_tx_lane
                    else:
                        previous = route[hop_index - 1]
                        in_port = opposite_port(self.topology.port_towards(previous, position))
                        in_lane = link_lanes[hop_index - 1]
                    if hop_index == len(route) - 1:
                        out_port, out_lane = Port.TILE, tile_rx_lane
                    else:
                        following = route[hop_index + 1]
                        out_port = self.topology.port_towards(position, following)
                        out_lane = link_lanes[hop_index]
                    hops.append(LaneHop(position, in_port, in_lane, out_port, out_lane))

                circuits.append(
                    LaneCircuit(
                        channel_name=channel_name,
                        index=index,
                        src=src,
                        dst=dst,
                        route=tuple(route),
                        hops=tuple(hops),
                    )
                )
        except AllocationError:
            # Roll back every reservation made so far.
            for (link, lane) in reserved_links:
                self._free_link_units[link].add(lane)
            for lane in reserved_tx:
                self._free_tile_tx[src].add(lane)
            for lane in reserved_rx:
                self._free_tile_rx[dst].add(lane)
            raise

        return circuits

    def _release_circuit(self, circuit: LaneCircuit) -> None:
        self._free_tile_tx[circuit.src].add(circuit.source_tile_lane)
        self._free_tile_rx[circuit.dst].add(circuit.destination_tile_lane)
        for a, b, hop in zip(circuit.route, circuit.route[1:], circuit.hops):
            self._free_link_units[(a, b)].add(hop.out_lane)
