"""Network-on-Chip substrate: mesh, tiles, networks, allocation and the CCN.

This package assembles full multi-router systems from the router models:

* :class:`~repro.noc.topology.Mesh2D` — the 2-D mesh of Section 1.1,
* :class:`~repro.noc.tile.TileGrid` — the heterogeneous tiles of Fig. 1,
* :class:`~repro.noc.network.CircuitSwitchedNoC` and
  :class:`~repro.noc.packet_network.PacketSwitchedNoC` — complete
  guaranteed-throughput networks built from either router,
* :class:`~repro.noc.path_allocation.LaneAllocator` — lane-level circuit
  allocation,
* :class:`~repro.noc.mapping.SpatialMapper` — run-time process placement,
* :class:`~repro.noc.be_network.BestEffortNetwork` — configuration transport,
* :class:`~repro.noc.ccn.CentralCoordinationNode` — the admission pipeline
  that ties all of the above together.
"""

from repro.noc.topology import Mesh2D, Position
from repro.noc.tile import DEFAULT_TILE_PATTERN, ProcessingTile, TileGrid
from repro.noc.path_allocation import (
    CircuitAllocation,
    LaneAllocator,
    LaneCircuit,
    LaneHop,
)
from repro.noc.mapping import Mapping, SpatialMapper
from repro.noc.be_network import (
    BestEffortNetwork,
    BestEffortParameters,
    ConfigurationDelivery,
)
from repro.noc.network import CircuitSwitchedNoC, StreamEndpoints
from repro.noc.packet_network import PacketStreamEndpoints, PacketSwitchedNoC
from repro.noc.ccn import ApplicationAdmission, CentralCoordinationNode, FeasibilityReport

__all__ = [
    "Mesh2D",
    "Position",
    "DEFAULT_TILE_PATTERN",
    "ProcessingTile",
    "TileGrid",
    "CircuitAllocation",
    "LaneAllocator",
    "LaneCircuit",
    "LaneHop",
    "Mapping",
    "SpatialMapper",
    "BestEffortNetwork",
    "BestEffortParameters",
    "ConfigurationDelivery",
    "CircuitSwitchedNoC",
    "StreamEndpoints",
    "PacketStreamEndpoints",
    "PacketSwitchedNoC",
    "ApplicationAdmission",
    "CentralCoordinationNode",
    "FeasibilityReport",
]
