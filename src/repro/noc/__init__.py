"""Network-on-Chip substrate: topologies, tiles, networks, allocation and the CCN.

This package assembles full multi-router systems from the router models:

* :mod:`repro.noc.topology` — the :class:`~repro.noc.topology.Topology`
  protocol with the paper's :class:`~repro.noc.topology.Mesh2D` (Section 1.1)
  plus :class:`~repro.noc.topology.Torus2D` (wraparound links) and
  :class:`~repro.noc.topology.IrregularMesh` (faulty-link decorator),
* :class:`~repro.noc.routing.RoutingTable` — table-driven routing derived
  from the topology graph (XY dimension order on the mesh),
* :class:`~repro.noc.tile.TileGrid` — the heterogeneous tiles of Fig. 1,
* :class:`~repro.noc.fabric.NocBase` and
  :func:`~repro.noc.fabric.build_network` — the topology-generic fabric layer
  under :class:`~repro.noc.network.CircuitSwitchedNoC` and
  :class:`~repro.noc.packet_network.PacketSwitchedNoC`, complete
  guaranteed-throughput networks built from either router,
* :class:`~repro.noc.admission.AdmissionController` — the network-agnostic
  admission layer (route search over per-link resource pools), with
  :class:`~repro.noc.path_allocation.LaneAllocator` (lane-level circuit
  allocation) and :class:`~repro.noc.slot_table.SlotTableAllocator`
  (contention-free TDMA slot scheduling) as its two resource models,
* :class:`~repro.noc.gt_network.TimeDivisionNoC` — the simulated
  Æthereal-style guaranteed-throughput network (``"gt"``/``"aethereal"``),
* :class:`~repro.noc.mapping.SpatialMapper` — run-time process placement,
* :class:`~repro.noc.be_network.BestEffortNetwork` — configuration transport,
* :class:`~repro.noc.ccn.CentralCoordinationNode` — the admission pipeline
  that ties all of the above together.
"""

from repro.noc.topology import IrregularMesh, Mesh2D, Position, Topology, Torus2D
from repro.noc.routing import RoutingTable, dimension_order_route
from repro.noc.tile import DEFAULT_TILE_PATTERN, ProcessingTile, TileGrid
from repro.noc.admission import AdmissionController
from repro.noc.path_allocation import (
    CircuitAllocation,
    LaneAllocator,
    LaneCircuit,
    LaneHop,
)
from repro.noc.slot_table import (
    SlotAllocation,
    SlotCircuit,
    SlotHop,
    SlotTableAllocator,
)
from repro.noc.mapping import Mapping, SpatialMapper
from repro.noc.be_network import (
    BestEffortNetwork,
    BestEffortParameters,
    ConfigurationDelivery,
)
from repro.noc.fabric import NocBase, build_network, network_kinds, resolve_network_kind
from repro.noc.network import CircuitSwitchedNoC, StreamEndpoints
from repro.noc.packet_network import PacketStreamEndpoints, PacketSwitchedNoC
from repro.noc.gt_network import (
    GtStreamEndpoints,
    SlotTableRouter,
    TdmaLink,
    TimeDivisionNoC,
)
from repro.noc.ccn import (
    ApplicationAdmission,
    CentralCoordinationNode,
    FaultRecovery,
    FeasibilityReport,
)
from repro.noc.selection import FabricCandidate, FabricDecision, FabricSelector
from repro.noc.faults import (
    FaultInjector,
    FaultReport,
    FaultSpec,
    loaded_link_chooser,
    random_link_chooser,
    random_router_chooser,
)

__all__ = [
    "Topology",
    "Mesh2D",
    "Torus2D",
    "IrregularMesh",
    "Position",
    "RoutingTable",
    "dimension_order_route",
    "DEFAULT_TILE_PATTERN",
    "ProcessingTile",
    "TileGrid",
    "AdmissionController",
    "CircuitAllocation",
    "LaneAllocator",
    "LaneCircuit",
    "LaneHop",
    "SlotAllocation",
    "SlotCircuit",
    "SlotHop",
    "SlotTableAllocator",
    "Mapping",
    "SpatialMapper",
    "BestEffortNetwork",
    "BestEffortParameters",
    "ConfigurationDelivery",
    "NocBase",
    "build_network",
    "network_kinds",
    "resolve_network_kind",
    "CircuitSwitchedNoC",
    "StreamEndpoints",
    "PacketStreamEndpoints",
    "PacketSwitchedNoC",
    "GtStreamEndpoints",
    "SlotTableRouter",
    "TdmaLink",
    "TimeDivisionNoC",
    "ApplicationAdmission",
    "CentralCoordinationNode",
    "FaultRecovery",
    "FeasibilityReport",
    "FabricCandidate",
    "FabricDecision",
    "FabricSelector",
    "FaultInjector",
    "FaultReport",
    "FaultSpec",
    "loaded_link_chooser",
    "random_link_chooser",
    "random_router_chooser",
]
