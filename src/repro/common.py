"""Shared definitions used throughout the reproduction.

This module collects the handful of concepts that every subsystem refers to:

* the five router ports of the paper's routers (one tile port plus the four
  mesh neighbours, Section 5.1 of the paper),
* small bit-manipulation helpers used by the bit-accurate router models,
* the exception hierarchy of the library.

Everything here is deliberately dependency-free so that any subpackage can
import it without creating cycles.
"""

from __future__ import annotations

import enum
from typing import Iterable, Iterator, Sequence

__all__ = [
    "Port",
    "NEIGHBOR_PORTS",
    "ALL_PORTS",
    "opposite_port",
    "port_offset",
    "bit_mask",
    "popcount",
    "hamming_distance",
    "toggle_count",
    "split_bits",
    "join_bits",
    "check_field",
    "ReproError",
    "ConfigurationError",
    "AllocationError",
    "CapacityError",
    "MappingError",
    "ProtocolError",
    "SimulationError",
    "FaultError",
]


class Port(enum.IntEnum):
    """The five bidirectional ports of a router.

    The paper's router (Fig. 4) has one port towards the local processing
    tile and four ports towards the neighbouring routers of the 2-D mesh.
    The integer values are used as array indices throughout the router
    models, so they must stay dense and start at zero.
    """

    TILE = 0
    NORTH = 1
    EAST = 2
    SOUTH = 3
    WEST = 4

    @property
    def is_tile(self) -> bool:
        """True for the processing-tile port."""
        return self is Port.TILE

    @property
    def is_neighbor(self) -> bool:
        """True for the four mesh-neighbour ports."""
        return self is not Port.TILE

    @property
    def short_name(self) -> str:
        """Single-letter name used in traces and reports (``T/N/E/S/W``)."""
        return self.name[0]


#: The four mesh-neighbour ports in clockwise order starting at north.
NEIGHBOR_PORTS: tuple[Port, ...] = (Port.NORTH, Port.EAST, Port.SOUTH, Port.WEST)

#: All five ports, tile first (index order).
ALL_PORTS: tuple[Port, ...] = (
    Port.TILE,
    Port.NORTH,
    Port.EAST,
    Port.SOUTH,
    Port.WEST,
)

_OPPOSITE = {
    Port.NORTH: Port.SOUTH,
    Port.SOUTH: Port.NORTH,
    Port.EAST: Port.WEST,
    Port.WEST: Port.EAST,
}

_OFFSETS = {
    Port.NORTH: (0, 1),
    Port.SOUTH: (0, -1),
    Port.EAST: (1, 0),
    Port.WEST: (-1, 0),
}


def opposite_port(port: Port) -> Port:
    """Return the port on the neighbouring router facing back at *port*.

    The tile port has no opposite; asking for it is a programming error.
    """
    try:
        return _OPPOSITE[Port(port)]
    except KeyError:
        raise ValueError(f"port {port!r} has no opposite (tile port?)") from None


def port_offset(port: Port) -> tuple[int, int]:
    """Return the ``(dx, dy)`` mesh offset of the neighbour behind *port*.

    The mesh uses a mathematical orientation: ``x`` grows towards the east,
    ``y`` grows towards the north.
    """
    try:
        return _OFFSETS[Port(port)]
    except KeyError:
        raise ValueError(f"port {port!r} is not a neighbour port") from None


# ---------------------------------------------------------------------------
# Bit utilities
# ---------------------------------------------------------------------------


def bit_mask(width: int) -> int:
    """Return an all-ones mask of *width* bits (``width`` may be zero)."""
    if width < 0:
        raise ValueError(f"width must be non-negative, got {width}")
    return (1 << width) - 1


if hasattr(int, "bit_count"):  # Python >= 3.10

    def _bit_count(value: int) -> int:
        return value.bit_count()

else:  # pragma: no cover - fallback for older runtimes

    def _bit_count(value: int) -> int:
        return bin(value).count("1")


def popcount(value: int) -> int:
    """Number of set bits in a non-negative integer."""
    if value < 0:
        raise ValueError("popcount is only defined for non-negative integers")
    return _bit_count(value)


def hamming_distance(a: int, b: int) -> int:
    """Number of differing bits between two non-negative integers."""
    value = a ^ b
    if value < 0:
        raise ValueError("hamming_distance is only defined for non-negative integers")
    return _bit_count(value)


def toggle_count(previous: int, current: int, width: int | None = None) -> int:
    """Number of signal transitions when a bus changes from *previous* to *current*.

    If *width* is given the comparison is restricted to that many LSBs; this
    is what the activity counters of the power model use.  The hot router
    loops call this every cycle, so the implementation is a single XOR plus
    the native ``int.bit_count`` (with a string-counting fallback for
    runtimes older than Python 3.10).
    """
    if width is not None:
        m = (1 << width) - 1
        return _bit_count((previous & m) ^ (current & m))
    value = previous ^ current
    if value < 0:
        raise ValueError("toggle_count is only defined for non-negative integers")
    return _bit_count(value)


def split_bits(value: int, chunk_width: int, count: int, *, msb_first: bool = True) -> list[int]:
    """Split *value* into *count* chunks of *chunk_width* bits.

    The circuit-switched data converter uses this to serialise a 20-bit lane
    packet into five 4-bit phits (Section 5.2 of the paper).  With
    ``msb_first=True`` the first element of the result is the most
    significant chunk, which is also the first phit on the wire.
    """
    if chunk_width <= 0:
        raise ValueError("chunk_width must be positive")
    if count <= 0:
        raise ValueError("count must be positive")
    if value < 0:
        raise ValueError("value must be non-negative")
    if value >> (chunk_width * count):
        raise ValueError(
            f"value {value:#x} does not fit in {count} chunks of {chunk_width} bits"
        )
    m = bit_mask(chunk_width)
    chunks = [(value >> (i * chunk_width)) & m for i in range(count)]
    chunks.reverse()  # now MSB first
    if not msb_first:
        chunks.reverse()
    return chunks


def join_bits(chunks: Sequence[int], chunk_width: int, *, msb_first: bool = True) -> int:
    """Inverse of :func:`split_bits`."""
    if chunk_width <= 0:
        raise ValueError("chunk_width must be positive")
    m = bit_mask(chunk_width)
    value = 0
    ordered: Iterable[int] = chunks if msb_first else reversed(list(chunks))
    for chunk in ordered:
        if chunk < 0 or chunk > m:
            raise ValueError(f"chunk {chunk:#x} does not fit in {chunk_width} bits")
        value = (value << chunk_width) | chunk
    return value


def check_field(value: int, width: int, name: str) -> int:
    """Validate that *value* fits in *width* bits and return it.

    Used by packet/flit constructors so that malformed values are rejected
    where they are created rather than corrupting a simulation later.
    """
    if not isinstance(value, int):
        raise TypeError(f"{name} must be an int, got {type(value).__name__}")
    if value < 0 or value > bit_mask(width):
        raise ValueError(f"{name}={value} does not fit in {width} bits")
    return value


def iter_bits(value: int, width: int) -> Iterator[int]:
    """Yield the bits of *value*, LSB first, exactly *width* of them."""
    for i in range(width):
        yield (value >> i) & 1


# ---------------------------------------------------------------------------
# Exceptions
# ---------------------------------------------------------------------------


class ReproError(Exception):
    """Base class for all errors raised by the library."""


class ConfigurationError(ReproError):
    """An invalid crossbar / router configuration was requested."""


class AllocationError(ReproError):
    """The lane allocator could not find resources for a channel."""


class CapacityError(ReproError):
    """A bandwidth or buffer capacity constraint was violated."""


class MappingError(ReproError):
    """The spatial mapper could not place an application on the mesh."""


class ProtocolError(ReproError):
    """A wire-level protocol invariant was violated (framing, credits, ...)."""


class SimulationError(ReproError):
    """The simulation kernel detected an inconsistency."""


class FaultError(ReproError):
    """A run-time fault injection was rejected or failed.

    Raised instead of the topology layer's generic ``ValueError`` when a
    requested link/router kill would disconnect the surviving fabric (the
    message names the cut), targets a resource that does not exist or is
    already dead, or would take out the CCN's own router.
    """
