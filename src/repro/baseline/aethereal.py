"""Literature reference model of the Philips Æthereal router (Table 4, last column).

The paper quotes the published synthesis/layout results of the Æthereal
router (Dielissen et al., "Concepts and implementation of the Philips
network-on-chip") for comparison: 6 ports, 32-bit data path, 0.175 mm² after
layout, 500 MHz, 16 Gb/s per link.  No component breakdown was published
("n.a." in Table 4), so — like the paper — we carry the quoted constants and
add only a small analytic model of its contention-free slot-table operation,
which is used by the guaranteed-throughput comparison in the documentation
and the ablation benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["AetherealReference", "AETHEREAL"]


@dataclass(frozen=True)
class AetherealReference:
    """Published characteristics of the Æthereal guaranteed-throughput router."""

    num_ports: int = 6
    data_width_bits: int = 32
    total_area_mm2: float = 0.175
    max_frequency_mhz: float = 500.0
    slot_table_size: int = 256

    @property
    def link_bandwidth_gbps(self) -> float:
        """Raw per-direction link bandwidth (Table 4: 16 Gb/s)."""
        return self.data_width_bits * self.max_frequency_mhz * 1e6 / 1e9

    def guaranteed_bandwidth_mbps(self, slots_allocated: int) -> float:
        """Guaranteed throughput of a connection holding *slots_allocated* slots.

        Æthereal divides each link into TDMA slots of its slot table; a
        connection's guaranteed bandwidth is its slot share of the raw link
        bandwidth.  This is the "static time slots table" whose configuration
        effort the paper contrasts with lane-division multiplexing
        (Section 4).
        """
        if not 0 <= slots_allocated <= self.slot_table_size:
            raise ValueError(
                f"slots_allocated must be within 0..{self.slot_table_size}"
            )
        share = slots_allocated / self.slot_table_size
        return share * self.link_bandwidth_gbps * 1e3

    def slots_needed_mbps(self, bandwidth_mbps: float) -> int:
        """Minimum number of slots needed to guarantee *bandwidth_mbps*."""
        if bandwidth_mbps < 0:
            raise ValueError("bandwidth must be non-negative")
        per_slot = self.link_bandwidth_gbps * 1e3 / self.slot_table_size
        import math

        return math.ceil(bandwidth_mbps / per_slot)


#: Default literature-reference instance used by the Table 4 benchmark.
AETHEREAL = AetherealReference()
