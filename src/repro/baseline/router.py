"""The packet-switched baseline router (Kavaldjiev-style virtual-channel router).

This is the "packet-switched equivalent" of Section 7: five bidirectional
16-bit ports, four virtual channels per input port, wormhole switching with
credit-based link-level flow control, XY routing and round-robin virtual
channel / switch allocation.  At the same clock frequency it offers the same
link bandwidth and bounded latency for guaranteed-throughput traffic as the
circuit-switched router, which is what makes the power comparison of
Figures 9 and 10 meaningful.

The model is flit- and bit-accurate where it matters for energy: every flit
is written to and read from an input FIFO, traverses the output crossbar
register, and toggles the link wires; every arbitration decision and every
grant change is recorded.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

from repro.baseline.arbiter import RoundRobinArbiter
from repro.baseline.buffer import VirtualChannelBuffer
from repro.baseline.flit import FLIT_PAYLOAD_BITS, Flit, Packet, packetize
from repro.baseline.link import PacketLink
from repro.baseline.routing import xy_route
from repro.baseline.vc import OutputVcAllocator, vc_state_table
from repro.common import ALL_PORTS, NEIGHBOR_PORTS, ConfigurationError, Port, toggle_count
from repro.energy.activity import ActivityCounters, ActivityKeys
from repro.energy.area import PacketSwitchedRouterArea
from repro.energy.power import PowerBreakdown, PowerModel
from repro.energy.technology import TSMC_130NM_LVHP, Technology
from repro.energy.timing import PacketSwitchedTiming
from repro.sim.engine import ClockedComponent

__all__ = ["PacketSwitchedRouter", "PacketTileInterface"]


class PacketTileInterface:
    """Word/packet-level interface between a processing tile and its router."""

    def __init__(self, router: "PacketSwitchedRouter", words_per_packet: int = 16) -> None:
        if words_per_packet < 1:
            raise ValueError("words_per_packet must be positive")
        self.router = router
        self.words_per_packet = words_per_packet
        self._injection_queue: Deque[Flit] = deque()
        self._next_vc = 0
        self._partial: Dict[Tuple[Tuple[int, int], int], List[Flit]] = {}
        self.received_packets: List[Packet] = []
        self.received_words: List[int] = []
        self.words_queued = 0

    # -- sending --------------------------------------------------------------------

    def send_packet(self, packet: Packet, vc: Optional[int] = None) -> None:
        """Queue a whole packet for injection into the network."""
        if vc is None:
            vc = self._next_vc
            self._next_vc = (self._next_vc + 1) % self.router.num_vcs
        self._injection_queue.extend(packetize(packet, vc))
        self.words_queued += len(packet.words)

    def send_words(self, dest: Tuple[int, int], words: List[int], vc: Optional[int] = None) -> int:
        """Split *words* into packets towards *dest* and queue them; returns packet count."""
        count = 0
        for start in range(0, len(words), self.words_per_packet):
            chunk = list(words[start : start + self.words_per_packet])
            self.send_packet(Packet(src=self.router.position, dest=dest, words=chunk), vc)
            count += 1
        return count

    @property
    def injection_backlog(self) -> int:
        """Flits queued at the tile but not yet accepted by the router."""
        return len(self._injection_queue)

    # -- receiving (driven by the router) ------------------------------------------------

    def _deliver(self, flit: Flit) -> None:
        key = (flit.src, flit.packet_id)
        flits = self._partial.setdefault(key, [])
        flits.append(flit)
        if flit.flit_type.is_tail:
            del self._partial[key]
            words = [f.payload for f in flits if not f.flit_type.is_head]
            packet = Packet(src=flit.src, dest=flit.dest, words=words, packet_id=flit.packet_id)
            self.received_packets.append(packet)
            self.received_words.extend(words)

    @property
    def words_received(self) -> int:
        """Total payload words delivered to this tile."""
        return len(self.received_words)

    def reset(self) -> None:
        """Drop all queued and partially received data."""
        self._injection_queue.clear()
        self._partial.clear()
        self.received_packets.clear()
        self.received_words.clear()
        self.words_queued = 0
        self._next_vc = 0


class PacketSwitchedRouter(ClockedComponent):
    """Cycle-accurate model of the virtual-channel wormhole baseline router."""

    NUM_PORTS = 5

    def __init__(
        self,
        name: str,
        position: Tuple[int, int] = (0, 0),
        num_vcs: int = 4,
        fifo_depth: int = 8,
        data_width: int = 16,
        words_per_packet: int = 16,
        tech: Technology = TSMC_130NM_LVHP,
    ) -> None:
        super().__init__(name)
        if data_width != FLIT_PAYLOAD_BITS:
            raise ConfigurationError(
                f"the baseline router models {FLIT_PAYLOAD_BITS}-bit links; "
                f"got data_width={data_width}"
            )
        self.position = position
        self.num_vcs = num_vcs
        self.fifo_depth = fifo_depth
        self.data_width = data_width
        self.tech = tech

        self.activity = ActivityCounters(name)
        self.area_model = PacketSwitchedRouterArea(
            self.NUM_PORTS, data_width, num_vcs, fifo_depth, tech=tech
        )
        self.timing_model = PacketSwitchedTiming(self.NUM_PORTS, num_vcs, fifo_depth, tech)

        self.ports: Tuple[Port, ...] = ALL_PORTS[: self.NUM_PORTS]
        self.buffers: Dict[Tuple[Port, int], VirtualChannelBuffer] = {
            (port, vc): VirtualChannelBuffer(f"{name}.{port.short_name}{vc}", fifo_depth, self.activity)
            for port in self.ports
            for vc in range(num_vcs)
        }
        self.vc_states = vc_state_table(list(self.ports), num_vcs)
        self.output_allocators: Dict[Port, OutputVcAllocator] = {
            port: OutputVcAllocator(port, num_vcs, fifo_depth) for port in self.ports
        }
        self.switch_arbiters: Dict[Port, RoundRobinArbiter] = {
            port: RoundRobinArbiter(self.NUM_PORTS * num_vcs) for port in self.ports
        }
        self._input_index: List[Tuple[Port, int]] = [
            (port, vc) for port in self.ports for vc in range(num_vcs)
        ]

        self.tile = PacketTileInterface(self, words_per_packet)

        self._rx_links: Dict[Port, Optional[PacketLink]] = {p: None for p in NEIGHBOR_PORTS}
        self._tx_links: Dict[Port, Optional[PacketLink]] = {p: None for p in NEIGHBOR_PORTS}
        self._output_prev_payload: Dict[Port, int] = {p: 0 for p in self.ports}
        self._last_winner: Dict[Port, Optional[Tuple[Port, int]]] = {p: None for p in self.ports}

        # Values sampled during evaluate, consumed during commit.
        self._sampled_flits: Dict[Port, Optional[Flit]] = {p: None for p in NEIGHBOR_PORTS}
        self._sampled_credits: Dict[Port, List[int]] = {
            p: [0] * num_vcs for p in NEIGHBOR_PORTS
        }

    # -- wiring ------------------------------------------------------------------------

    def attach_link(self, port: Port, rx_link: Optional[PacketLink], tx_link: Optional[PacketLink]) -> None:
        """Attach the incoming and outgoing flit channels of a neighbour port."""
        port = Port(port)
        if port not in NEIGHBOR_PORTS:
            raise ConfigurationError("links can only be attached to neighbour ports")
        for link in (rx_link, tx_link):
            if link is not None and link.num_vcs != self.num_vcs:
                raise ConfigurationError(
                    f"link {link.name!r} has {link.num_vcs} VCs, router expects {self.num_vcs}"
                )
        self._rx_links[port] = rx_link
        self._tx_links[port] = tx_link

    def rx_link(self, port: Port) -> Optional[PacketLink]:
        """Incoming flit channel at *port* (``None`` at a mesh edge)."""
        return self._rx_links[Port(port)]

    def tx_link(self, port: Port) -> Optional[PacketLink]:
        """Outgoing flit channel at *port* (``None`` at a mesh edge)."""
        return self._tx_links[Port(port)]

    # -- simulation -----------------------------------------------------------------------

    def evaluate(self, cycle: int) -> None:
        for port in NEIGHBOR_PORTS:
            rx = self._rx_links[port]
            self._sampled_flits[port] = rx.read() if rx is not None else None
            tx = self._tx_links[port]
            if tx is not None:
                self._sampled_credits[port] = [tx.take_credits(vc) for vc in range(self.num_vcs)]
            else:
                self._sampled_credits[port] = [0] * self.num_vcs

    def commit(self, cycle: int) -> None:
        activity = self.activity

        # 1. Credits returned by downstream routers.
        for port in NEIGHBOR_PORTS:
            allocator = self.output_allocators[port]
            for vc, amount in enumerate(self._sampled_credits[port]):
                if amount:
                    allocator.add_credits(vc, amount)

        # 2. Accept incoming flits into the input VC buffers.
        for port in NEIGHBOR_PORTS:
            flit = self._sampled_flits[port]
            if flit is not None:
                self.buffers[(port, flit.vc)].push(flit)

        # 3. Tile injection (local port): one flit per cycle if space allows.
        queue = self.tile._injection_queue
        if queue:
            flit = queue[0]
            buffer = self.buffers[(Port.TILE, flit.vc)]
            if not buffer.is_full():
                buffer.push(queue.popleft())

        # 4. Route computation and output-VC allocation for head-of-line head flits.
        for key in self._input_index:
            buffer = self.buffers[key]
            flit = buffer.front()
            if flit is None:
                continue
            state = self.vc_states[key]
            if flit.flit_type.is_head and not state.routed:
                state.out_port = xy_route(self.position, flit.dest)
            if state.routed and not state.allocated:
                out_vc = self.output_allocators[state.out_port].try_allocate(key)
                if out_vc is not None:
                    state.out_vc = out_vc
                    activity.add(ActivityKeys.VC_ALLOCATIONS, 1)

        # 5. Switch allocation and flit traversal, one winner per output port.
        credit_returns: Dict[Port, List[int]] = {p: [] for p in NEIGHBOR_PORTS}
        driven: Dict[Port, Optional[Flit]] = {p: None for p in NEIGHBOR_PORTS}
        for out_port in self.ports:
            requests: List[bool] = []
            for key in self._input_index:
                state = self.vc_states[key]
                buffer = self.buffers[key]
                wants = (
                    not buffer.is_empty()
                    and state.routed
                    and state.out_port == out_port
                    and state.allocated
                )
                if wants and out_port in NEIGHBOR_PORTS:
                    wants = (
                        self._tx_links[out_port] is not None
                        and self.output_allocators[out_port].credits(state.out_vc) > 0
                    )
                requests.append(wants)
            arbiter = self.switch_arbiters[out_port]
            winner_index = arbiter.grant(requests)
            if winner_index is None:
                continue
            winner_key = self._input_index[winner_index]
            activity.add(ActivityKeys.ARBITER_DECISIONS, 1)
            if self._last_winner[out_port] is not None and self._last_winner[out_port] != winner_key:
                activity.add(ActivityKeys.ARBITER_GRANT_CHANGES, 1)
            self._last_winner[out_port] = winner_key

            state = self.vc_states[winner_key]
            flit = self.buffers[winner_key].pop()
            out_flit = flit.with_vc(state.out_vc)
            activity.add(ActivityKeys.FLITS_ROUTED, 1)

            # Crossbar traversal and output register toggles.
            toggles = toggle_count(
                self._output_prev_payload[out_port], out_flit.payload, FLIT_PAYLOAD_BITS
            )
            if toggles:
                activity.add(ActivityKeys.REG_TOGGLE_BITS, toggles)
            self._output_prev_payload[out_port] = out_flit.payload

            if out_port == Port.TILE:
                self.tile._deliver(out_flit)
                activity.add(ActivityKeys.WORDS_DELIVERED, 0 if out_flit.flit_type.is_head else 1)
            else:
                self.output_allocators[out_port].consume_credit(state.out_vc)
                driven[out_port] = out_flit
                if toggles:
                    activity.add(ActivityKeys.LINK_TOGGLE_BITS, toggles)

            # Return a credit to the upstream router for the freed buffer slot.
            in_port, in_vc = winner_key
            if in_port in NEIGHBOR_PORTS:
                credit_returns[in_port].append(in_vc)

            if out_flit.flit_type.is_tail:
                self.output_allocators[state.out_port].release(state.out_vc)
                state.release()
                activity.add(ActivityKeys.PACKETS_ROUTED, 1)

        # 6. Drive the outgoing links and the upstream credit wires.
        for port in NEIGHBOR_PORTS:
            tx = self._tx_links[port]
            if tx is not None:
                tx.drive(driven[port])
            rx = self._rx_links[port]
            if rx is not None:
                for vc in credit_returns[port]:
                    rx.return_credit(vc, 1)

        activity.cycles = cycle + 1

    def reset(self) -> None:
        for buffer in self.buffers.values():
            buffer.reset()
        for state in self.vc_states.values():
            state.release()
        for allocator in self.output_allocators.values():
            allocator.reset(self.fifo_depth)
        for arbiter in self.switch_arbiters.values():
            arbiter.reset()
        self.tile.reset()
        self.activity.reset()
        self._output_prev_payload = {p: 0 for p in self.ports}
        self._last_winner = {p: None for p in self.ports}

    # -- reporting -----------------------------------------------------------------------

    def power(self, frequency_hz: float, cycles: int | None = None) -> PowerBreakdown:
        """Estimate the router's average power over the recorded activity."""
        model = PowerModel(self.tech)
        return model.estimate(self.area_model, self.activity, frequency_hz, cycles)

    def max_frequency_mhz(self) -> float:
        """Maximum clock frequency of this router instance (Table 4)."""
        return self.timing_model.max_frequency_mhz()

    @property
    def total_area_mm2(self) -> float:
        """Silicon area of this router instance (Table 4)."""
        return self.area_model.total_mm2
