"""The packet-switched baseline router (Kavaldjiev-style virtual-channel router).

This is the "packet-switched equivalent" of Section 7: five bidirectional
16-bit ports, four virtual channels per input port, wormhole switching with
credit-based link-level flow control, XY routing and round-robin virtual
channel / switch allocation.  At the same clock frequency it offers the same
link bandwidth and bounded latency for guaranteed-throughput traffic as the
circuit-switched router, which is what makes the power comparison of
Figures 9 and 10 meaningful.

The model is flit- and bit-accurate where it matters for energy: every flit
is written to and read from an input FIFO, traverses the output crossbar
register, and toggles the link wires; every arbitration decision and every
grant change is recorded.

Like the circuit-switched router, the baseline router participates in the
kernel's quiescence protocol (incoming flits, returned credits and tile
injections wake it; with empty buffers and idle wires it sleeps) and keeps
its per-cycle loops allocation-free via preallocated, port-indexed flat
lists — the comparison between the two fabrics stays apples-to-apples under
the quiescence-aware schedule.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

from repro.baseline.arbiter import RoundRobinArbiter
from repro.baseline.buffer import VirtualChannelBuffer
from repro.baseline.flit import FLIT_PAYLOAD_BITS, Flit, Packet, packetize
from repro.baseline.link import PacketLink
from repro.baseline.routing import RouteFunction, xy_route
from repro.baseline.vc import OutputVcAllocator, vc_state_table
from repro.common import ALL_PORTS, NEIGHBOR_PORTS, ConfigurationError, Port, toggle_count
from repro.energy.activity import ActivityCounters, ActivityKeys
from repro.energy.area import PacketSwitchedRouterArea
from repro.energy.power import PowerBreakdown, PowerModel
from repro.energy.technology import TSMC_130NM_LVHP, Technology
from repro.energy.timing import PacketSwitchedTiming
from repro.sim.engine import ClockedComponent

__all__ = ["PacketSwitchedRouter", "PacketTileInterface"]


class PacketTileInterface:
    """Word/packet-level interface between a processing tile and its router."""

    def __init__(self, router: "PacketSwitchedRouter", words_per_packet: int = 16) -> None:
        if words_per_packet < 1:
            raise ValueError("words_per_packet must be positive")
        self.router = router
        self.words_per_packet = words_per_packet
        self._injection_queue: Deque[Flit] = deque()
        self._next_vc = 0
        self._partial: Dict[Tuple[Tuple[int, int], int], List[Flit]] = {}
        self.received_packets: List[Packet] = []
        self.received_words: List[int] = []
        self.words_queued = 0

    # -- sending --------------------------------------------------------------------

    def send_packet(self, packet: Packet, vc: Optional[int] = None) -> None:
        """Queue a whole packet for injection into the network."""
        if vc is None:
            vc = self._next_vc
            self._next_vc = (self._next_vc + 1) % self.router.num_vcs
        self._injection_queue.extend(packetize(packet, vc))
        self.words_queued += len(packet.words)
        self.router.wake()

    def send_words(self, dest: Tuple[int, int], words: List[int], vc: Optional[int] = None) -> int:
        """Split *words* into packets towards *dest* and queue them; returns packet count."""
        count = 0
        for start in range(0, len(words), self.words_per_packet):
            chunk = list(words[start : start + self.words_per_packet])
            self.send_packet(Packet(src=self.router.position, dest=dest, words=chunk), vc)
            count += 1
        return count

    @property
    def injection_backlog(self) -> int:
        """Flits queued at the tile but not yet accepted by the router."""
        return len(self._injection_queue)

    # -- receiving (driven by the router) ------------------------------------------------

    def _deliver(self, flit: Flit) -> None:
        key = (flit.src, flit.packet_id)
        flits = self._partial.setdefault(key, [])
        flits.append(flit)
        if flit.flit_type.is_tail:
            del self._partial[key]
            words = [f.payload for f in flits if not f.flit_type.is_head]
            packet = Packet(src=flit.src, dest=flit.dest, words=words, packet_id=flit.packet_id)
            self.received_packets.append(packet)
            self.received_words.extend(words)

    @property
    def words_received(self) -> int:
        """Total payload words delivered to this tile."""
        return len(self.received_words)

    def reset(self) -> None:
        """Drop all queued and partially received data."""
        self._injection_queue.clear()
        self._partial.clear()
        self.received_packets.clear()
        self.received_words.clear()
        self.words_queued = 0
        self._next_vc = 0


class PacketSwitchedRouter(ClockedComponent):
    """Cycle-accurate model of the virtual-channel wormhole baseline router."""

    NUM_PORTS = 5

    def __init__(
        self,
        name: str,
        position: Tuple[int, int] = (0, 0),
        num_vcs: int = 4,
        fifo_depth: int = 8,
        data_width: int = 16,
        words_per_packet: int = 16,
        tech: Technology = TSMC_130NM_LVHP,
        route: Optional[RouteFunction] = None,
    ) -> None:
        super().__init__(name)
        if data_width != FLIT_PAYLOAD_BITS:
            raise ConfigurationError(
                f"the baseline router models {FLIT_PAYLOAD_BITS}-bit links; "
                f"got data_width={data_width}"
            )
        self.position = position
        #: Routing decision ``(current, dest) -> Port``; XY dimension order by
        #: default, a topology-derived table when built by the fabric layer.
        self.route: RouteFunction = route if route is not None else xy_route
        self.num_vcs = num_vcs
        self.fifo_depth = fifo_depth
        self.data_width = data_width
        self.tech = tech

        self.activity = ActivityCounters(name)
        self.area_model = PacketSwitchedRouterArea(
            self.NUM_PORTS, data_width, num_vcs, fifo_depth, tech=tech
        )
        self.timing_model = PacketSwitchedTiming(self.NUM_PORTS, num_vcs, fifo_depth, tech)

        self.ports: Tuple[Port, ...] = ALL_PORTS[: self.NUM_PORTS]
        self.buffers: Dict[Tuple[Port, int], VirtualChannelBuffer] = {
            (port, vc): VirtualChannelBuffer(f"{name}.{port.short_name}{vc}", fifo_depth, self.activity)
            for port in self.ports
            for vc in range(num_vcs)
        }
        self.vc_states = vc_state_table(list(self.ports), num_vcs)
        self.output_allocators: Dict[Port, OutputVcAllocator] = {
            port: OutputVcAllocator(port, num_vcs, fifo_depth) for port in self.ports
        }
        self.switch_arbiters: Dict[Port, RoundRobinArbiter] = {
            port: RoundRobinArbiter(self.NUM_PORTS * num_vcs) for port in self.ports
        }
        self._input_index: List[Tuple[Port, int]] = [
            (port, vc) for port in self.ports for vc in range(num_vcs)
        ]
        # Parallel flat views of the input side, aligned with _input_index,
        # so the switch-allocation loops never hash dictionary keys.
        self._input_buffers: List[VirtualChannelBuffer] = [
            self.buffers[key] for key in self._input_index
        ]
        self._input_states = [self.vc_states[key] for key in self._input_index]
        self._port_allocators = [self.output_allocators[p] for p in self.ports]
        self._port_arbiters = [self.switch_arbiters[p] for p in self.ports]

        self.tile = PacketTileInterface(self, words_per_packet)

        self._rx_links: Dict[Port, Optional[PacketLink]] = {p: None for p in NEIGHBOR_PORTS}
        self._tx_links: Dict[Port, Optional[PacketLink]] = {p: None for p in NEIGHBOR_PORTS}
        # Port-indexed flat working state (index = int(Port)); entry 0 (the
        # tile port) stays at its idle value in the link-related lists.
        num_ports = self.NUM_PORTS
        self._rx_by_port: List[Optional[PacketLink]] = [None] * num_ports
        self._tx_by_port: List[Optional[PacketLink]] = [None] * num_ports
        self._output_prev_payload: List[int] = [0] * num_ports
        self._last_winner: List[Optional[Tuple[Port, int]]] = [None] * num_ports
        # Values sampled during evaluate, consumed during commit.
        self._sampled_flits: List[Optional[Flit]] = [None] * num_ports
        self._sampled_credits: List[List[int]] = [[0] * num_vcs for _ in range(num_ports)]
        # Per-cycle scratch, reused without allocation.
        self._requests: List[bool] = [False] * (num_ports * num_vcs)
        self._driven: List[Optional[Flit]] = [None] * num_ports
        self._credit_returns: List[List[int]] = [[] for _ in range(num_ports)]

    # -- wiring ------------------------------------------------------------------------

    def attach_link(self, port: Port, rx_link: Optional[PacketLink], tx_link: Optional[PacketLink]) -> None:
        """Attach the incoming and outgoing flit channels of a neighbour port."""
        port = Port(port)
        if port not in NEIGHBOR_PORTS:
            raise ConfigurationError("links can only be attached to neighbour ports")
        for link in (rx_link, tx_link):
            if link is not None and link.num_vcs != self.num_vcs:
                raise ConfigurationError(
                    f"link {link.name!r} has {link.num_vcs} VCs, router expects {self.num_vcs}"
                )
        self._rx_links[port] = rx_link
        self._tx_links[port] = tx_link
        # The port dictionaries are the source of truth; the flat lists the
        # hot loops index are rebuilt from them wholesale so the two views
        # can never drift apart.
        for neighbor in NEIGHBOR_PORTS:
            self._rx_by_port[neighbor] = self._rx_links[neighbor]
            self._tx_by_port[neighbor] = self._tx_links[neighbor]
        if rx_link is not None:
            # A flit arriving here must wake a sleeping router.
            rx_link.watch_flits(self.wake)
        if tx_link is not None:
            # Credits returned by the downstream router likewise.
            tx_link.watch_credits(self.wake)
        self.wake()

    def rx_link(self, port: Port) -> Optional[PacketLink]:
        """Incoming flit channel at *port* (``None`` at a mesh edge)."""
        return self._rx_links[Port(port)]

    def tx_link(self, port: Port) -> Optional[PacketLink]:
        """Outgoing flit channel at *port* (``None`` at a mesh edge)."""
        return self._tx_links[Port(port)]

    # -- simulation -----------------------------------------------------------------------

    supports_quiescence = True

    def evaluate(self, cycle: int) -> None:
        sampled_flits = self._sampled_flits
        sampled_credits = self._sampled_credits
        for port in NEIGHBOR_PORTS:
            rx = self._rx_by_port[port]
            sampled_flits[port] = rx.forward if rx is not None else None
            tx = self._tx_by_port[port]
            credits = sampled_credits[port]
            if tx is not None:
                tx.take_all_credits(credits)
            else:
                for vc in range(self.num_vcs):
                    credits[vc] = 0

    def commit(self, cycle: int) -> None:
        activity = self.activity

        # 1. Credits returned by downstream routers.
        for port in NEIGHBOR_PORTS:
            allocator = self._port_allocators[port]
            for vc, amount in enumerate(self._sampled_credits[port]):
                if amount:
                    allocator.add_credits(vc, amount)

        # 2. Accept incoming flits into the input VC buffers.
        for port in NEIGHBOR_PORTS:
            flit = self._sampled_flits[port]
            if flit is not None:
                self.buffers[(port, flit.vc)].push(flit)

        # 3. Tile injection (local port): one flit per cycle if space allows.
        queue = self.tile._injection_queue
        if queue:
            flit = queue[0]
            buffer = self.buffers[(Port.TILE, flit.vc)]
            if not buffer.is_full():
                buffer.push(queue.popleft())

        # 4. Route computation and output-VC allocation for head-of-line head flits.
        input_index = self._input_index
        input_buffers = self._input_buffers
        input_states = self._input_states
        for index, buffer in enumerate(input_buffers):
            flit = buffer.front()
            if flit is None:
                continue
            state = input_states[index]
            if flit.flit_type.is_head and state.out_port is None:
                state.out_port = self.route(self.position, flit.dest)
            if state.out_port is not None and state.out_vc is None:
                out_vc = self._port_allocators[state.out_port].try_allocate(input_index[index])
                if out_vc is not None:
                    state.out_vc = out_vc
                    activity.add(ActivityKeys.VC_ALLOCATIONS, 1)

        # 5. Switch allocation and flit traversal, one winner per output port.
        credit_returns = self._credit_returns
        driven = self._driven
        requests = self._requests
        for out_port in self.ports:
            is_neighbor = out_port is not Port.TILE
            allocator = self._port_allocators[out_port]
            tx_missing = is_neighbor and self._tx_by_port[out_port] is None
            for index, buffer in enumerate(input_buffers):
                state = input_states[index]
                wants = (
                    state.out_port == out_port
                    and state.out_vc is not None
                    and len(buffer._fifo) != 0
                )
                if wants and is_neighbor:
                    wants = not tx_missing and allocator.credits(state.out_vc) > 0
                requests[index] = wants
            winner_index = self._port_arbiters[out_port].grant(requests)
            if winner_index is None:
                continue
            winner_key = input_index[winner_index]
            activity.add(ActivityKeys.ARBITER_DECISIONS, 1)
            last_winner = self._last_winner[out_port]
            if last_winner is not None and last_winner != winner_key:
                activity.add(ActivityKeys.ARBITER_GRANT_CHANGES, 1)
            self._last_winner[out_port] = winner_key

            state = input_states[winner_index]
            flit = input_buffers[winner_index].pop()
            out_flit = flit.with_vc(state.out_vc)
            activity.add(ActivityKeys.FLITS_ROUTED, 1)

            # Crossbar traversal and output register toggles.
            toggles = toggle_count(
                self._output_prev_payload[out_port], out_flit.payload, FLIT_PAYLOAD_BITS
            )
            if toggles:
                activity.add(ActivityKeys.REG_TOGGLE_BITS, toggles)
            self._output_prev_payload[out_port] = out_flit.payload

            if out_port == Port.TILE:
                self.tile._deliver(out_flit)
                activity.add(ActivityKeys.WORDS_DELIVERED, 0 if out_flit.flit_type.is_head else 1)
            else:
                allocator.consume_credit(state.out_vc)
                driven[out_port] = out_flit
                if toggles:
                    activity.add(ActivityKeys.LINK_TOGGLE_BITS, toggles)

            # Return a credit to the upstream router for the freed buffer slot.
            in_port, in_vc = winner_key
            if in_port is not Port.TILE:
                credit_returns[in_port].append(in_vc)

            if out_flit.flit_type.is_tail:
                self._port_allocators[state.out_port].release(state.out_vc)
                state.release()
                activity.add(ActivityKeys.PACKETS_ROUTED, 1)

        # 6. Drive the outgoing links and the upstream credit wires.
        for port in NEIGHBOR_PORTS:
            tx = self._tx_by_port[port]
            if tx is not None:
                tx.drive(driven[port])
                driven[port] = None
            rx = self._rx_by_port[port]
            returns = credit_returns[port]
            if returns:
                if rx is not None:
                    for vc in returns:
                        rx.return_credit(vc, 1)
                returns.clear()

        activity.cycles = cycle + 1

    def quiescent(self) -> bool:
        """True when another cycle with unchanged inputs would change nothing.

        Empty input buffers, an empty injection queue, idle flit wires in
        both directions and no uncollected credits mean every commit step
        degenerates to a no-op (the round-robin arbiters do not advance
        without requests).  The *outgoing* wires must be idle because a
        just-driven flit is a transient: the next commit replaces it with
        ``None``, and sleeping before that would leave it on the wire for
        the downstream router to re-sample.  Packets parked mid-route
        (routed/allocated states with an empty buffer) are fine: they resume
        when the upstream router places the next flit on the wire, which
        wakes this router.
        """
        if self.tile._injection_queue:
            return False
        for port in NEIGHBOR_PORTS:
            rx = self._rx_by_port[port]
            if rx is not None and rx.forward is not None:
                return False
            tx = self._tx_by_port[port]
            if tx is not None and (tx.forward is not None or tx.has_pending_credits()):
                return False
        for buffer in self._input_buffers:
            if buffer._fifo:
                return False
        return True

    # -- timed protocol: predict "blocked until an input changes" ------------

    supports_timed_wake = True

    def next_event_cycle(self, cycle: int) -> Optional[int]:
        """``None`` (park until a dirty-bit wake) when provably blocked.

        Beyond full quiescence — checked first by the scheduler — the router
        can park while *stalled*: all wires idle, nothing to inject, and
        every occupied input VC's head-of-line flit immovable (tile-bound
        flits always move; a head awaiting VC allocation is stuck only with
        no free output VC; an allocated flit is stuck only with a missing
        output link or zero credit).  Every commit then degenerates to the
        idle tick — the no-request arbiter and failing VC allocation are
        both pure — until a flit, credit or injection wakes the router.

        A backlogged injection queue is an event only while the tile buffer
        it feeds has space: a back-pressured worm whose target VC buffer is
        full cannot inject either, and that buffer can only drain through
        this router's own traversal — covered by the head-of-line scan
        below — so the router parks until the credits that unblock the
        worm arrive (a dirty-bit wake on the output link).
        """
        queue = self.tile._injection_queue
        if queue and not self.buffers[(Port.TILE, queue[0].vc)].is_full():
            return cycle
        for port in NEIGHBOR_PORTS:
            rx = self._rx_by_port[port]
            if rx is not None and rx.forward is not None:
                return cycle
            tx = self._tx_by_port[port]
            if tx is not None and (tx.forward is not None or tx.has_pending_credits()):
                return cycle
        input_states = self._input_states
        for index, buffer in enumerate(self._input_buffers):
            flit = buffer.front()
            if flit is None:
                continue
            state = input_states[index]
            if state.out_port is None:
                return cycle  # route computation still pending
            if state.out_port == Port.TILE:
                return cycle  # tile delivery never blocks
            if state.out_vc is None:
                if self._port_allocators[state.out_port].has_free_vc():
                    return cycle  # VC allocation would succeed
                continue
            if (
                self._tx_by_port[state.out_port] is not None
                and self._port_allocators[state.out_port].credits(state.out_vc) > 0
            ):
                return cycle  # switch traversal would succeed
        return None

    def idle_tick(self, start_cycle: int, cycles: int) -> None:
        """Apply *cycles* of idle accounting (the baseline router only counts cycles).

        An idle packet-switched router records no per-cycle register
        activity — its energy model is event-based (buffer accesses,
        arbitration, traversals) — so only the cycle counter advances.
        """
        self.activity.cycles = start_cycle + cycles

    def reset(self) -> None:
        for buffer in self.buffers.values():
            buffer.reset()
        for state in self.vc_states.values():
            state.release()
        for allocator in self.output_allocators.values():
            allocator.reset(self.fifo_depth)
        for arbiter in self.switch_arbiters.values():
            arbiter.reset()
        self.tile.reset()
        self.activity.reset()
        for port in range(self.NUM_PORTS):
            self._output_prev_payload[port] = 0
            self._last_winner[port] = None
            self._sampled_flits[port] = None
            self._driven[port] = None
            self._credit_returns[port].clear()
            for vc in range(self.num_vcs):
                self._sampled_credits[port][vc] = 0

    # -- reporting -----------------------------------------------------------------------

    def power(self, frequency_hz: float, cycles: int | None = None) -> PowerBreakdown:
        """Estimate the router's average power over the recorded activity."""
        model = PowerModel(self.tech)
        return model.estimate(self.area_model, self.activity, frequency_hz, cycles)

    def max_frequency_mhz(self) -> float:
        """Maximum clock frequency of this router instance (Table 4)."""
        return self.timing_model.max_frequency_mhz()

    @property
    def total_area_mm2(self) -> float:
        """Silicon area of this router instance (Table 4)."""
        return self.area_model.total_mm2
