"""XY dimension-order routing for the packet-switched baseline.

The mesh uses the mathematical orientation defined in :mod:`repro.common`:
``x`` grows towards the east, ``y`` grows towards the north.  XY routing
first corrects the x coordinate, then the y coordinate, and delivers to the
local tile when both match — deterministic, deadlock-free on a mesh, and the
standard choice for this class of router.

The arithmetic itself lives in :func:`repro.noc.routing.dimension_order_route`
(one source of truth shared with the table-driven router tables); this module
keeps the baseline's historical ``xy_route`` name plus the mesh-only path
helpers the single-router test benches use.
"""

from __future__ import annotations

from typing import Callable, Tuple

from repro.common import Port, port_offset

__all__ = ["xy_route", "route_distance", "path_ports", "RouteFunction"]

#: Shape of every routing decision function: ``(current, dest) -> Port``.
#: ``xy_route`` is the mesh instance; topology-derived routing tables
#: (:class:`repro.noc.routing.RoutingTable`) provide the generic one.
RouteFunction = Callable[[Tuple[int, int], Tuple[int, int]], Port]


def xy_route(current: Tuple[int, int], dest: Tuple[int, int]) -> Port:
    """Output port chosen at *current* for a packet heading to *dest*.

    Thin wrapper around the shared arithmetic in
    :func:`repro.noc.routing.dimension_order_route`; bound lazily because the
    ``repro.noc`` package (whose init assembles the full fabric layer) imports
    the baseline router while loading.
    """
    global _dimension_order_route
    if _dimension_order_route is None:
        from repro.noc.routing import dimension_order_route

        _dimension_order_route = dimension_order_route
    return _dimension_order_route(current, dest)


_dimension_order_route: RouteFunction | None = None


def route_distance(src: Tuple[int, int], dest: Tuple[int, int]) -> int:
    """Number of router-to-router hops between two mesh positions."""
    return abs(src[0] - dest[0]) + abs(src[1] - dest[1])


def path_ports(
    src: Tuple[int, int],
    dest: Tuple[int, int],
    route: RouteFunction = xy_route,
) -> list[Port]:
    """The sequence of output ports a routed packet takes from *src* to *dest*.

    The final element is always :attr:`Port.TILE` (delivery at the destination
    router); useful for tests and for the best-effort configuration network.
    Positions advance by coordinate offsets, so *route* must only emit ports
    whose neighbour exists on an unbounded grid; wraparound or degraded
    topologies should walk :meth:`repro.noc.routing.RoutingTable.path_ports`
    instead.
    """
    ports: list[Port] = []
    position = src
    while position != dest:
        port = route(position, dest)
        if port is Port.TILE:  # pragma: no cover - routes never deliver early
            break
        ports.append(port)
        dx, dy = port_offset(port)
        position = (position[0] + dx, position[1] + dy)
    ports.append(Port.TILE)
    return ports
