"""XY dimension-order routing for the packet-switched baseline.

The mesh uses the mathematical orientation defined in :mod:`repro.common`:
``x`` grows towards the east, ``y`` grows towards the north.  XY routing
first corrects the x coordinate, then the y coordinate, and delivers to the
local tile when both match — deterministic, deadlock-free on a mesh, and the
standard choice for this class of router.
"""

from __future__ import annotations

from typing import Tuple

from repro.common import Port

__all__ = ["xy_route", "route_distance", "path_ports"]


def xy_route(current: Tuple[int, int], dest: Tuple[int, int]) -> Port:
    """Output port chosen at *current* for a packet heading to *dest*."""
    cx, cy = current
    dx, dy = dest
    if dx > cx:
        return Port.EAST
    if dx < cx:
        return Port.WEST
    if dy > cy:
        return Port.NORTH
    if dy < cy:
        return Port.SOUTH
    return Port.TILE


def route_distance(src: Tuple[int, int], dest: Tuple[int, int]) -> int:
    """Number of router-to-router hops between two mesh positions."""
    return abs(src[0] - dest[0]) + abs(src[1] - dest[1])


def path_ports(src: Tuple[int, int], dest: Tuple[int, int]) -> list[Port]:
    """The sequence of output ports an XY-routed packet takes from *src* to *dest*.

    The final element is always :attr:`Port.TILE` (delivery at the destination
    router); useful for tests and for the best-effort configuration network.
    """
    ports: list[Port] = []
    position = src
    while position != dest:
        port = xy_route(position, dest)
        ports.append(port)
        if port == Port.EAST:
            position = (position[0] + 1, position[1])
        elif port == Port.WEST:
            position = (position[0] - 1, position[1])
        elif port == Port.NORTH:
            position = (position[0], position[1] + 1)
        elif port == Port.SOUTH:
            position = (position[0], position[1] - 1)
        else:  # pragma: no cover - xy_route never returns TILE before arrival
            break
    ports.append(Port.TILE)
    return ports
