"""Virtual-channel state tracking and output-VC allocation.

A wormhole packet holds one virtual channel on every link of its path from
head flit to tail flit.  The input side of the router keeps per-VC state
(current route, allocated output VC); the output side keeps, per output port,
which output VCs are free and how much downstream buffer credit each has.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.baseline.arbiter import RoundRobinArbiter
from repro.common import Port

__all__ = ["InputVcState", "OutputVcAllocator"]


@dataclass(slots=True)
class InputVcState:
    """Book-keeping of one input virtual channel of the router."""

    port: Port
    vc: int
    #: Output port chosen by route computation for the packet currently
    #: occupying this VC (``None`` when idle or not yet routed).
    out_port: Optional[Port] = None
    #: Output VC allocated on that port (``None`` until VC allocation wins).
    out_vc: Optional[int] = None

    @property
    def routed(self) -> bool:
        """True once route computation has run for the current packet."""
        return self.out_port is not None

    @property
    def allocated(self) -> bool:
        """True once an output VC has been granted to the current packet."""
        return self.out_vc is not None

    def release(self) -> None:
        """Forget all per-packet state (called after the tail flit leaves)."""
        self.out_port = None
        self.out_vc = None


@dataclass(slots=True)
class _OutputVc:
    """State of one output virtual channel of one output port."""

    vc: int
    credits: int
    holder: Optional[tuple[Port, int]] = None  # input (port, vc) currently holding it

    @property
    def free(self) -> bool:
        """True when no packet holds this output VC."""
        return self.holder is None


class OutputVcAllocator:
    """Per-output-port allocator of output virtual channels and credits."""

    def __init__(self, port: Port, num_vcs: int, downstream_buffer_depth: int) -> None:
        if num_vcs < 1:
            raise ValueError("need at least one virtual channel")
        if downstream_buffer_depth < 1:
            raise ValueError("downstream buffer depth must be positive")
        self.port = port
        self.num_vcs = num_vcs
        self._vcs: List[_OutputVc] = [
            _OutputVc(vc=i, credits=downstream_buffer_depth) for i in range(num_vcs)
        ]
        self._arbiter = RoundRobinArbiter(num_vcs)
        self.allocations = 0

    # -- allocation ----------------------------------------------------------------

    def try_allocate(self, requester: tuple[Port, int]) -> Optional[int]:
        """Grant a free output VC to *requester* (an input ``(port, vc)``)."""
        free = [vc.free for vc in self._vcs]
        if not any(free):
            return None
        choice = self._arbiter.grant(free)
        if choice is None:  # pragma: no cover - any(free) guarantees a grant
            return None
        self._vcs[choice].holder = requester
        self.allocations += 1
        return choice

    def has_free_vc(self) -> bool:
        """True when :meth:`try_allocate` would currently succeed.

        Pure inspection (the round-robin pointer does not move) — used by
        the router's event-schedule stall prediction.
        """
        return any(vc.free for vc in self._vcs)

    def release(self, vc: int) -> None:
        """Free an output VC after the packet's tail flit has left."""
        self._check_vc(vc)
        self._vcs[vc].holder = None

    def holder(self, vc: int) -> Optional[tuple[Port, int]]:
        """The input (port, vc) currently holding output VC *vc*."""
        self._check_vc(vc)
        return self._vcs[vc].holder

    # -- credits ----------------------------------------------------------------------

    def credits(self, vc: int) -> int:
        """Remaining downstream buffer credit of output VC *vc*."""
        self._check_vc(vc)
        return self._vcs[vc].credits

    def consume_credit(self, vc: int) -> None:
        """Spend one credit when a flit is sent on output VC *vc*."""
        self._check_vc(vc)
        if self._vcs[vc].credits <= 0:
            raise ValueError(f"no credit left on {self.port.name} VC {vc}")
        self._vcs[vc].credits -= 1

    def add_credits(self, vc: int, amount: int) -> None:
        """Return *amount* credits (downstream freed buffer slots)."""
        self._check_vc(vc)
        if amount < 0:
            raise ValueError("credit amount must be non-negative")
        self._vcs[vc].credits += amount

    def reset(self, downstream_buffer_depth: int) -> None:
        """Return to the power-on state with fresh credit counters."""
        for entry in self._vcs:
            entry.credits = downstream_buffer_depth
            entry.holder = None
        self._arbiter.reset()
        self.allocations = 0

    def _check_vc(self, vc: int) -> None:
        if not 0 <= vc < self.num_vcs:
            raise IndexError(f"virtual channel {vc} out of range 0..{self.num_vcs - 1}")


def vc_state_table(ports: List[Port], num_vcs: int) -> Dict[tuple[Port, int], InputVcState]:
    """Build the input-VC state table for a router with the given ports."""
    return {
        (port, vc): InputVcState(port=port, vc=vc)
        for port in ports
        for vc in range(num_vcs)
    }
