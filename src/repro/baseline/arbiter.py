"""Round-robin arbitration for the packet-switched baseline router.

Each output port of the router has a switch allocator that picks one of the
requesting input virtual channels per cycle.  Arbitration is the "extra
control in the crossbar" the paper blames for part of the packet-switched
router's energy overhead; the grant *changes* (which toggle the crossbar
select lines) are recorded separately because they are the mechanism behind
the non-linearity observed when two streams collide on the same output port
(Section 7.3).
"""

from __future__ import annotations

from typing import Optional, Sequence

__all__ = ["RoundRobinArbiter"]


class RoundRobinArbiter:
    """A classic rotating-priority arbiter.

    The arbiter remembers the last granted requester; the search for the next
    grant starts just after it, which guarantees that every persistent
    requester is eventually served (fairness) and that a single persistent
    requester keeps its grant (no spurious switching).
    """

    def __init__(self, num_requesters: int) -> None:
        if num_requesters < 1:
            raise ValueError("an arbiter needs at least one requester")
        self.num_requesters = num_requesters
        self._pointer = 0
        self._last_grant: Optional[int] = None
        self.decisions = 0
        self.grant_changes = 0

    @property
    def last_grant(self) -> Optional[int]:
        """The requester granted on the most recent decision (``None`` initially)."""
        return self._last_grant

    def grant(self, requests: Sequence[bool]) -> Optional[int]:
        """Pick one requester among *requests*; ``None`` when nobody requests.

        Statistics (number of decisions, number of grant changes) are updated
        as a side effect; the router copies them into its activity counters.
        """
        if len(requests) != self.num_requesters:
            raise ValueError(
                f"expected {self.num_requesters} request lines, got {len(requests)}"
            )
        if not any(requests):
            return None
        self.decisions += 1
        # Rotating priority: start searching just after the pointer.
        for offset in range(self.num_requesters):
            candidate = (self._pointer + offset) % self.num_requesters
            if requests[candidate]:
                if self._last_grant is not None and candidate != self._last_grant:
                    self.grant_changes += 1
                self._last_grant = candidate
                self._pointer = (candidate + 1) % self.num_requesters
                return candidate
        return None  # pragma: no cover - unreachable, any(requests) is true

    def reset(self) -> None:
        """Forget all arbitration history."""
        self._pointer = 0
        self._last_grant = None
        self.decisions = 0
        self.grant_changes = 0
