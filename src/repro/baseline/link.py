"""Links of the packet-switched baseline: 16-bit flit channel plus credits.

A :class:`PacketLink` is the packet-switched counterpart of
:class:`repro.core.lane.LaneLink`: one unidirectional 16-bit flit channel and
a per-virtual-channel credit return path in the reverse direction.  Like the
lane link it is a pure wire bundle — the registers driving it live in the
routers at either end.

Both directions carry a :class:`repro.sim.signals.DirtyBit` so the
quiescence-aware kernel can sleep the routers at either end: a flit placed on
the wire wakes the receiver, a credit returned wakes the sender.  Driving the
idle value (``None``) onto an already idle wire — every cycle of an idle
fabric — costs a single comparison.
"""

from __future__ import annotations

from typing import List, Optional

from repro.baseline.flit import Flit
from repro.sim.signals import DirtyBit, WakeListener

__all__ = ["PacketLink"]


class PacketLink:
    """One unidirectional flit channel with credit-based flow control."""

    __slots__ = (
        "name",
        "num_vcs",
        "forward",
        "credits",
        "flit_dirty",
        "credit_dirty",
        "dead",
        "dropped",
    )

    def __init__(
        self,
        name: str,
        num_vcs: int = 4,
        forward: Optional[Flit] = None,
        credits: Optional[List[int]] = None,
    ) -> None:
        if num_vcs < 1:
            raise ValueError("a packet link needs at least one virtual channel")
        self.name = name
        self.num_vcs = num_vcs
        #: Committed flit currently on the wire (``None`` = idle).
        self.forward = forward
        #: Pending credit returns per virtual channel (written by the
        #: receiver, consumed by the sender).
        self.credits: List[int] = credits if credits else [0] * num_vcs
        #: Dirty-bit of the flit wire; its listener is the receiver's ``wake``.
        self.flit_dirty = DirtyBit()
        #: Dirty-bit of the credit wires; its listener is the sender's ``wake``.
        self.credit_dirty = DirtyBit()
        #: True once :meth:`fail` killed the channel (fault model).
        self.dead = False
        #: Flits swallowed by the dead channel (in-flight at the kill plus
        #: every flit driven afterwards).
        self.dropped = 0

    # -- dirty-bit wiring --------------------------------------------------------

    def watch_flits(self, listener: WakeListener) -> None:
        """Wake *listener* whenever a flit is placed on the wire."""
        self.flit_dirty.listener = listener

    def watch_credits(self, listener: WakeListener) -> None:
        """Wake *listener* whenever credits are returned."""
        self.credit_dirty.listener = listener

    # -- forward flit -------------------------------------------------------------

    def drive(self, flit: Optional[Flit]) -> None:
        """Place *flit* on the wire for the next cycle (``None`` = idle).

        Only a new flit wakes the receiver: the receiver cannot have been
        asleep while a flit was on the wire (ingesting it keeps it busy for
        at least the following cycle), so the flit→idle transition needs no
        wake-up.
        """
        if flit is None:
            self.forward = None
            return
        if self.dead:
            # A broken channel swallows the flit.  The credit it would have
            # consumed downstream is synthesised back immediately, so the
            # sending router drains its buffered worm into the void and can
            # go quiescent instead of stalling forever on a dead wire.
            self.dropped += 1
            self.credits[flit.vc] += 1
            self.credit_dirty.mark()
            return
        self.forward = flit
        self.flit_dirty.mark()

    def read(self) -> Optional[Flit]:
        """Sample the flit currently on the wire."""
        return self.forward

    # -- credit return ---------------------------------------------------------------

    def return_credit(self, vc: int, amount: int = 1) -> None:
        """Called by the receiver when it frees *amount* buffer slots of *vc*."""
        self._check_vc(vc)
        if amount < 0:
            raise ValueError("credit amount must be non-negative")
        if amount:
            self.credits[vc] += amount
            self.credit_dirty.mark()

    def take_credits(self, vc: int) -> int:
        """Called by the sender: collect (and clear) pending credits of *vc*."""
        self._check_vc(vc)
        amount = self.credits[vc]
        self.credits[vc] = 0
        return amount

    def take_all_credits(self, into: List[int]) -> None:
        """Collect (and clear) the pending credits of every virtual channel.

        Fills the preallocated *into* list in place — the router hot loop
        uses this to sample all credit wires without per-cycle allocation.
        """
        credits = self.credits
        for vc in range(self.num_vcs):
            into[vc] = credits[vc]
            credits[vc] = 0

    def has_pending_credits(self) -> bool:
        """True when at least one credit return has not been collected yet."""
        return any(self.credits)

    def reset(self) -> None:
        """Return the link to the idle state."""
        self.forward = None
        for vc in range(self.num_vcs):
            self.credits[vc] = 0

    def fail(self) -> int:
        """Kill the channel: the wire falls idle, future flits are swallowed.

        Returns the number of in-flight flits lost (0 or 1 — the wire holds
        at most one committed flit).  The lost flit's credit is synthesised
        back so the upstream router's credit accounting recovers; both ends
        are woken to re-sample the dead wire.
        """
        if self.dead:
            return 0
        self.dead = True
        dropped = 0
        flit = self.forward
        if flit is not None:
            dropped = 1
            self.dropped += 1
            self.forward = None
            self.credits[flit.vc] += 1
        self.flit_dirty.mark()
        self.credit_dirty.mark()
        return dropped

    def _check_vc(self, vc: int) -> None:
        if not 0 <= vc < self.num_vcs:
            raise IndexError(f"virtual channel {vc} out of range 0..{self.num_vcs - 1}")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PacketLink({self.name!r}, num_vcs={self.num_vcs})"
