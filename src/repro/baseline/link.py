"""Links of the packet-switched baseline: 16-bit flit channel plus credits.

A :class:`PacketLink` is the packet-switched counterpart of
:class:`repro.core.lane.LaneLink`: one unidirectional 16-bit flit channel and
a per-virtual-channel credit return path in the reverse direction.  Like the
lane link it is a pure wire bundle — the registers driving it live in the
routers at either end.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.baseline.flit import Flit

__all__ = ["PacketLink"]


@dataclass
class PacketLink:
    """One unidirectional flit channel with credit-based flow control."""

    name: str
    num_vcs: int = 4

    #: Committed flit currently on the wire (``None`` = idle).
    forward: Optional[Flit] = None
    #: Pending credit returns per virtual channel (written by the receiver,
    #: consumed by the sender).
    credits: List[int] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.num_vcs < 1:
            raise ValueError("a packet link needs at least one virtual channel")
        if not self.credits:
            self.credits = [0] * self.num_vcs

    # -- forward flit -------------------------------------------------------------

    def drive(self, flit: Optional[Flit]) -> None:
        """Place *flit* on the wire for the next cycle (``None`` = idle)."""
        self.forward = flit

    def read(self) -> Optional[Flit]:
        """Sample the flit currently on the wire."""
        return self.forward

    # -- credit return ---------------------------------------------------------------

    def return_credit(self, vc: int, amount: int = 1) -> None:
        """Called by the receiver when it frees *amount* buffer slots of *vc*."""
        self._check_vc(vc)
        if amount < 0:
            raise ValueError("credit amount must be non-negative")
        self.credits[vc] += amount

    def take_credits(self, vc: int) -> int:
        """Called by the sender: collect (and clear) pending credits of *vc*."""
        self._check_vc(vc)
        amount = self.credits[vc]
        self.credits[vc] = 0
        return amount

    def reset(self) -> None:
        """Return the link to the idle state."""
        self.forward = None
        self.credits = [0] * self.num_vcs

    def _check_vc(self, vc: int) -> None:
        if not 0 <= vc < self.num_vcs:
            raise IndexError(f"virtual channel {vc} out of range 0..{self.num_vcs - 1}")
