"""The packet-switched baseline the paper compares against.

This package implements a Kavaldjiev-style virtual-channel wormhole router
(5 ports, 16-bit links, 4 VCs, credit flow control, XY routing) plus the
literature reference constants of the Philips Æthereal router.  Together with
:mod:`repro.core` it provides both columns of the paper's comparison.
"""

from repro.baseline.flit import (
    FLIT_CONTROL_BITS,
    FLIT_PAYLOAD_BITS,
    Flit,
    FlitType,
    Packet,
    depacketize,
    packetize,
    split_words,
)
from repro.baseline.buffer import VirtualChannelBuffer
from repro.baseline.link import PacketLink
from repro.baseline.routing import RouteFunction, path_ports, route_distance, xy_route
from repro.baseline.arbiter import RoundRobinArbiter
from repro.baseline.vc import InputVcState, OutputVcAllocator
from repro.baseline.router import PacketSwitchedRouter, PacketTileInterface
from repro.baseline.aethereal import AETHEREAL, AetherealReference
from repro.baseline.testbench import (
    PacketStreamConsumer,
    PacketStreamDriver,
    TilePacketConsumer,
    TilePacketDriver,
)

__all__ = [
    "FLIT_CONTROL_BITS",
    "FLIT_PAYLOAD_BITS",
    "Flit",
    "FlitType",
    "Packet",
    "depacketize",
    "packetize",
    "split_words",
    "VirtualChannelBuffer",
    "PacketLink",
    "RouteFunction",
    "path_ports",
    "route_distance",
    "xy_route",
    "RoundRobinArbiter",
    "InputVcState",
    "OutputVcAllocator",
    "PacketSwitchedRouter",
    "PacketTileInterface",
    "AETHEREAL",
    "AetherealReference",
    "PacketStreamConsumer",
    "PacketStreamDriver",
    "TilePacketConsumer",
    "TilePacketDriver",
]
