"""Flits and packets of the packet-switched baseline router.

The packet-switched equivalent the paper compares against (Kavaldjiev's
virtual-channel router [6]) uses 16-bit links; a network packet is a head
flit carrying the destination, a number of 16-bit payload flits and a tail
flit.  The default payload size of 16 data words per packet keeps the header
overhead near 6 %, comparable to the 4-bit-per-word header of the
circuit-switched lane packet (25 % on the wire but at 4× narrower lanes).
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Iterable, List, Sequence, Tuple

from repro.common import check_field

__all__ = ["FlitType", "Flit", "Packet", "packetize", "depacketize"]

#: Payload width of one flit in bits (the link width of the baseline router).
FLIT_PAYLOAD_BITS = 16
#: Control bits stored alongside each flit in the buffers (type encoding).
FLIT_CONTROL_BITS = 2

_packet_ids = itertools.count(1)


class FlitType(enum.Enum):
    """Position of a flit within its packet."""

    HEAD = "head"
    BODY = "body"
    TAIL = "tail"
    SINGLE = "single"  # head and tail in one flit (single-word packet)

    @property
    def is_head(self) -> bool:
        """True for flits that open a packet (carry routing information)."""
        return self in (FlitType.HEAD, FlitType.SINGLE)

    @property
    def is_tail(self) -> bool:
        """True for flits that close a packet (release the virtual channel)."""
        return self in (FlitType.TAIL, FlitType.SINGLE)


@dataclass(frozen=True, slots=True)
class Flit:
    """One 16-bit flit travelling through the packet-switched network.

    The destination is carried explicitly on every flit for the convenience
    of the model; in hardware only the head flit encodes it (the payload of a
    head flit here is exactly that encoding, so toggle statistics are
    faithful).
    """

    flit_type: FlitType
    payload: int
    dest: Tuple[int, int]
    src: Tuple[int, int]
    vc: int
    packet_id: int
    sequence: int

    def __post_init__(self) -> None:
        check_field(self.payload, FLIT_PAYLOAD_BITS, "flit payload")
        if self.vc < 0:
            raise ValueError("virtual channel id must be non-negative")
        if self.sequence < 0:
            raise ValueError("sequence number must be non-negative")

    @property
    def storage_bits(self) -> int:
        """Bits occupied in a VC buffer (payload plus control)."""
        return FLIT_PAYLOAD_BITS + FLIT_CONTROL_BITS

    def with_vc(self, vc: int) -> "Flit":
        """Copy of this flit travelling on a different virtual channel."""
        return Flit(self.flit_type, self.payload, self.dest, self.src, vc, self.packet_id, self.sequence)


@dataclass
class Packet:
    """A whole network packet: destination plus a list of 16-bit data words."""

    src: Tuple[int, int]
    dest: Tuple[int, int]
    words: List[int] = field(default_factory=list)
    packet_id: int = field(default_factory=lambda: next(_packet_ids))

    @property
    def payload_bits(self) -> int:
        """Number of payload bits carried by the packet."""
        return len(self.words) * FLIT_PAYLOAD_BITS

    @property
    def flit_count(self) -> int:
        """Number of flits the packet occupies on a link (head + words)."""
        return 1 + len(self.words) if self.words else 1


def _encode_destination(dest: Tuple[int, int], src: Tuple[int, int], length: int) -> int:
    """Head-flit payload: destination / source coordinates and packet length."""
    dx, dy = dest
    sx, sy = src
    return (
        ((dx & 0xF) << 12)
        | ((dy & 0xF) << 8)
        | ((sx & 0x3) << 6)
        | ((sy & 0x3) << 4)
        | (length & 0xF)
    )


def packetize(packet: Packet, vc: int = 0) -> List[Flit]:
    """Split a :class:`Packet` into its flits (head, body…, tail)."""
    words = packet.words
    if not words:
        head_payload = _encode_destination(packet.dest, packet.src, 0)
        return [
            Flit(FlitType.SINGLE, head_payload, packet.dest, packet.src, vc, packet.packet_id, 0)
        ]
    flits: List[Flit] = [
        Flit(
            FlitType.HEAD,
            _encode_destination(packet.dest, packet.src, len(words)),
            packet.dest,
            packet.src,
            vc,
            packet.packet_id,
            0,
        )
    ]
    for index, word in enumerate(words):
        last = index == len(words) - 1
        flits.append(
            Flit(
                FlitType.TAIL if last else FlitType.BODY,
                word,
                packet.dest,
                packet.src,
                vc,
                packet.packet_id,
                index + 1,
            )
        )
    return flits


def depacketize(flits: Sequence[Flit]) -> Packet:
    """Reassemble a packet from its flits (inverse of :func:`packetize`)."""
    if not flits:
        raise ValueError("cannot reassemble a packet from zero flits")
    head = flits[0]
    if not head.flit_type.is_head:
        raise ValueError("first flit is not a head flit")
    words = [flit.payload for flit in flits[1:]]
    return Packet(src=head.src, dest=head.dest, words=words, packet_id=head.packet_id)


def split_words(words: Iterable[int], words_per_packet: int) -> List[List[int]]:
    """Chunk a word stream into packet payloads of at most *words_per_packet*."""
    if words_per_packet < 1:
        raise ValueError("words_per_packet must be positive")
    chunks: List[List[int]] = []
    current: List[int] = []
    for word in words:
        current.append(word)
        if len(current) == words_per_packet:
            chunks.append(current)
            current = []
    if current:
        chunks.append(current)
    return chunks
