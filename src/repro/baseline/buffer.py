"""Input virtual-channel buffers of the packet-switched baseline router.

The buffers are the dominant area (0.1034 mm² of the 0.18 mm² router in
Table 4) and energy cost of the packet-switched router — every flit is
written into and read out of a FIFO even when the output port is free, which
is exactly the overhead the circuit-switched router avoids.  Every write and
read is therefore recorded in the activity counters.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional

from repro.baseline.flit import Flit
from repro.common import CapacityError
from repro.energy.activity import ActivityCounters, ActivityKeys

__all__ = ["VirtualChannelBuffer"]


class VirtualChannelBuffer:
    """A FIFO of flits for one (input port, virtual channel) pair."""

    def __init__(
        self,
        name: str,
        depth: int = 8,
        activity: ActivityCounters | None = None,
    ) -> None:
        if depth < 1:
            raise ValueError("buffer depth must be positive")
        self.name = name
        self.depth = depth
        self.activity = activity if activity is not None else ActivityCounters(name)
        self._fifo: Deque[Flit] = deque()
        self.total_writes = 0
        self.total_reads = 0
        self.max_occupancy = 0

    # -- occupancy ----------------------------------------------------------------

    @property
    def occupancy(self) -> int:
        """Number of flits currently stored."""
        return len(self._fifo)

    @property
    def free_slots(self) -> int:
        """Remaining capacity in flits."""
        return self.depth - len(self._fifo)

    def is_empty(self) -> bool:
        """True when no flit is stored."""
        return not self._fifo

    def is_full(self) -> bool:
        """True when no further flit can be accepted."""
        return len(self._fifo) >= self.depth

    # -- data movement ----------------------------------------------------------------

    def push(self, flit: Flit) -> None:
        """Write one flit into the FIFO (records buffer-write energy)."""
        if self.is_full():
            raise CapacityError(
                f"buffer {self.name} overflow: upstream ignored credit-based flow control"
            )
        self._fifo.append(flit)
        self.total_writes += 1
        self.max_occupancy = max(self.max_occupancy, len(self._fifo))
        self.activity.add(ActivityKeys.BUFFER_WRITE_BITS, flit.storage_bits)

    def front(self) -> Optional[Flit]:
        """The head-of-line flit without removing it (``None`` when empty)."""
        return self._fifo[0] if self._fifo else None

    def pop(self) -> Flit:
        """Remove and return the head-of-line flit (records buffer-read energy)."""
        if not self._fifo:
            raise CapacityError(f"buffer {self.name} underflow: pop from an empty FIFO")
        flit = self._fifo.popleft()
        self.total_reads += 1
        self.activity.add(ActivityKeys.BUFFER_READ_BITS, flit.storage_bits)
        return flit

    def reset(self) -> None:
        """Drop all stored flits and statistics."""
        self._fifo.clear()
        self.total_writes = 0
        self.total_reads = 0
        self.max_occupancy = 0
