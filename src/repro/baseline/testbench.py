"""Test-bench components for the packet-switched baseline router.

These mirror :mod:`repro.core.testbench` for the packet-switched router so the
power scenarios of Section 6 can be applied to both routers with identical
traffic: a paced word stream of a given load and bit-flip statistic entering
through a neighbour port or through the local tile interface, and a consumer
that drains the corresponding output.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, List, Optional, Tuple

from repro.baseline.flit import Flit, Packet, packetize
from repro.baseline.link import PacketLink
from repro.baseline.router import PacketSwitchedRouter
from repro.core.header import phits_per_packet
from repro.core.testbench import LoadPacer
from repro.sim.engine import ClockedComponent

__all__ = [
    "PacketStreamDriver",
    "PacketStreamConsumer",
    "TilePacketDriver",
    "TilePacketConsumer",
]

WordSource = Callable[[], int]


class _WordPacer(LoadPacer):
    """Accumulates stream words at the scenario's offered load.

    A "stream" in the paper's scenarios is a 16-bit word every five cycles at
    100 % load (80 Mbit/s at 25 MHz), regardless of which router carries it —
    this keeps the circuit- and packet-switched experiments identical.  The
    exact (and therefore leapable) credit arithmetic lives in
    :class:`repro.core.testbench.LoadPacer`.
    """

    def words_this_cycle(self) -> int:
        """Number of new stream words produced this cycle (0 or 1)."""
        return 1 if self.should_emit() else 0


class PacketStreamDriver(ClockedComponent):
    """Emulates an upstream router injecting a word stream through a link.

    The driver groups the stream words into packets of *words_per_packet*,
    respects the credit-based flow control of the router's input buffer and
    sends at most one flit per cycle — exactly what a real upstream router
    would do.
    """

    def __init__(
        self,
        name: str,
        link: PacketLink,
        word_source: WordSource,
        dest: Tuple[int, int],
        src: Tuple[int, int],
        load: float = 1.0,
        vc: int = 0,
        words_per_packet: int = 16,
        downstream_buffer_depth: int = 8,
        data_width: int = 16,
        lane_width: int = 4,
    ) -> None:
        super().__init__(name)
        self.link = link
        self.word_source = word_source
        self.dest = dest
        self.src = src
        self.vc = vc
        self.words_per_packet = words_per_packet
        self._pacer = _WordPacer(load, phits_per_packet(data_width, lane_width))
        # Returned credits must wake a parked driver (the router only watches
        # the flit side of its receive links, so the credit side is free).
        link.credit_dirty.add_listener(self.wake)
        self._credits = downstream_buffer_depth
        self._flit_queue: Deque[Flit] = deque()
        self._pending_words: List[int] = []
        self.words_offered = 0
        self.words_sent = 0
        self.flits_sent = 0

    def evaluate(self, cycle: int) -> None:
        # Collect credits returned by the router for our virtual channel.
        self._credits += self.link.take_credits(self.vc)
        if self._pacer.words_this_cycle():
            self.words_offered += 1
            self._pending_words.append(self.word_source())
            if len(self._pending_words) >= self.words_per_packet:
                self._flush()

    def _flush(self) -> None:
        if not self._pending_words:
            return
        packet = Packet(src=self.src, dest=self.dest, words=list(self._pending_words))
        self._flit_queue.extend(packetize(packet, self.vc))
        self.words_sent += len(self._pending_words)
        self._pending_words.clear()

    def commit(self, cycle: int) -> None:
        if self._flit_queue and self._credits > 0:
            flit = self._flit_queue.popleft()
            self._credits -= 1
            self.flits_sent += 1
            self.link.drive(flit)
        else:
            self.link.drive(None)

    # -- timed protocol ------------------------------------------------------

    supports_timed_wake = True

    def next_event_cycle(self, cycle: int) -> Optional[int]:
        if (
            self._flit_queue
            or self.link.credits[self.vc]
            or self.link.forward is not None
        ):
            return cycle
        return self._pacer.next_emit_cycle(cycle)

    def idle_tick(self, start_cycle: int, cycles: int) -> None:
        self._pacer.skip(cycles)

    def reset(self) -> None:
        self._flit_queue.clear()
        self._pending_words.clear()
        self.words_offered = 0
        self.words_sent = 0
        self.flits_sent = 0


class PacketStreamConsumer(ClockedComponent):
    """Emulates a downstream router / tile draining one outgoing link."""

    def __init__(self, name: str, link: PacketLink) -> None:
        super().__init__(name)
        self.link = link
        # Arriving flits must wake a parked consumer (the router only watches
        # the credit side of its transmit links, so the flit side is free).
        link.flit_dirty.add_listener(self.wake)
        self.received_flits: List[Flit] = []
        self.received_words: List[int] = []
        self._sampled: Optional[Flit] = None

    def evaluate(self, cycle: int) -> None:
        self._sampled = self.link.read()

    def commit(self, cycle: int) -> None:
        flit = self._sampled
        if flit is None:
            return
        self.received_flits.append(flit)
        if not flit.flit_type.is_head:
            self.received_words.append(flit.payload)
        # An always-consuming downstream immediately frees the buffer slot.
        self.link.return_credit(flit.vc, 1)

    # -- timed protocol: a pure sink never generates events of its own -------

    supports_timed_wake = True

    def next_event_cycle(self, cycle: int) -> Optional[int]:
        if self.link.forward is not None or self._sampled is not None:
            return cycle
        return None

    def idle_tick(self, start_cycle: int, cycles: int) -> None:
        pass

    @property
    def words_received(self) -> int:
        """Payload words fully received on this link."""
        return len(self.received_words)

    def reset(self) -> None:
        self.received_flits.clear()
        self.received_words.clear()
        self._sampled = None


class TilePacketDriver(ClockedComponent):
    """Feeds a paced word stream into the router through its tile interface."""

    def __init__(
        self,
        name: str,
        router: PacketSwitchedRouter,
        word_source: WordSource,
        dest: Tuple[int, int],
        load: float = 1.0,
        vc: Optional[int] = 0,
        words_per_packet: Optional[int] = None,
        data_width: int = 16,
        lane_width: int = 4,
    ) -> None:
        super().__init__(name)
        self.router = router
        self.word_source = word_source
        self.dest = dest
        self.vc = vc
        self.words_per_packet = words_per_packet or router.tile.words_per_packet
        self._pacer = _WordPacer(load, phits_per_packet(data_width, lane_width))
        self._pending_words: List[int] = []
        self.words_offered = 0
        self.words_sent = 0

    def evaluate(self, cycle: int) -> None:
        if self._pacer.words_this_cycle():
            self.words_offered += 1
            self._pending_words.append(self.word_source())
            if len(self._pending_words) >= self.words_per_packet:
                packet = Packet(
                    src=self.router.position, dest=self.dest, words=list(self._pending_words)
                )
                self.router.tile.send_packet(packet, self.vc)
                self.words_sent += len(self._pending_words)
                self._pending_words.clear()

    def commit(self, cycle: int) -> None:  # the router owns all clocked state
        pass

    # -- timed protocol: the pacer is the driver's only per-cycle state ------

    supports_timed_wake = True

    def next_event_cycle(self, cycle: int) -> Optional[int]:
        return self._pacer.next_emit_cycle(cycle)

    def idle_tick(self, start_cycle: int, cycles: int) -> None:
        self._pacer.skip(cycles)

    def reset(self) -> None:
        self._pending_words.clear()
        self.words_offered = 0
        self.words_sent = 0


class TilePacketConsumer(ClockedComponent):
    """Collects the words the router delivers to its local tile."""

    def __init__(self, name: str, router: PacketSwitchedRouter) -> None:
        super().__init__(name)
        self.router = router

    def evaluate(self, cycle: int) -> None:
        pass

    def commit(self, cycle: int) -> None:
        pass

    # -- timed protocol: pure statistics façade, never an event source -------

    supports_timed_wake = True

    def next_event_cycle(self, cycle: int) -> Optional[int]:
        return None

    def idle_tick(self, start_cycle: int, cycles: int) -> None:
        pass

    @property
    def words_received(self) -> int:
        """Payload words delivered to the router's tile interface."""
        return self.router.tile.words_received
