"""Experiment E-T4: regenerate Table 4 (synthesis results of the three routers).

The structural area and timing models of :mod:`repro.energy` are evaluated at
the paper's default design point and compared component-by-component against
the published numbers; the headline area ratio (≈3.5×) is reported as well.
"""

from __future__ import annotations

from typing import Dict, List

from repro.energy.synthesis import SynthesisResult, area_ratio, table4_results
from repro.experiments.paper_data import PAPER_AREA_RATIO, TABLE4_PAPER
from repro.experiments.report import comparison_rows, format_table

__all__ = [
    "measured_values",
    "reproduce_table4",
    "measured_area_ratio",
    "aethereal_provenance",
    "format_report",
]


def _flatten(result: SynthesisResult) -> Dict[str, float]:
    flat: Dict[str, float] = {
        "ports": float(result.num_ports),
        "data_width_bits": float(result.data_width_bits),
        "total_area_mm2": result.total_area_mm2,
        "max_frequency_mhz": result.max_frequency_mhz,
        "link_bandwidth_gbps": result.link_bandwidth_gbps,
    }
    for name, area in result.component_areas_mm2.items():
        flat[f"area_{name}_mm2"] = area
    return flat


def measured_values() -> Dict[str, Dict[str, float]]:
    """The reproduced Table 4 values keyed like :data:`TABLE4_PAPER`."""
    return {result.router: _flatten(result) for result in table4_results()}


def measured_area_ratio() -> float:
    """Packet-switched / circuit-switched total area (paper: ≈3.5)."""
    return area_ratio()


def reproduce_table4() -> Dict[str, List[dict]]:
    """Per-router paper-vs-measured comparison rows."""
    measured = measured_values()
    return {
        router: comparison_rows(measured.get(router, {}), reference, label="quantity")
        for router, reference in TABLE4_PAPER.items()
    }


def aethereal_provenance() -> Dict[str, str]:
    """Which Æthereal quantities are quoted constants vs. actually simulated.

    Like the paper, the synthesis-side numbers of the Æthereal column (area,
    maximum frequency, link bandwidth, port/data-width geometry) are *quoted*
    from Dielissen et al. — no component breakdown was published ("n.a." in
    Table 4), so they cannot be regenerated.  Since the
    :class:`repro.noc.gt_network.TimeDivisionNoC` network kind, the slot-table
    *behaviour* (contention-free TDMA scheduling, per-hop slot alignment,
    delivered traffic, switching activity and the resulting energy per bit)
    is simulated; only its static/clock power follows the quoted area.
    """
    return {
        "total_area_mm2": "quoted (published layout, 0.175 mm²)",
        "max_frequency_mhz": "quoted (published, 500 MHz)",
        "link_bandwidth_gbps": "quoted (published, 16 Gb/s)",
        "ports / data_width": "quoted (published, 6 ports x 32 bit)",
        "component_breakdown": "not available (n.a. in the paper's Table 4)",
        "slot-table scheduling": "simulated (repro.noc.slot_table)",
        "delivered traffic / energy per bit": "simulated (repro.noc.gt_network)",
        "switching activity": "simulated (register/link toggles, table writes)",
        "static / clock power": "derived from the quoted area",
    }


def format_report() -> str:
    """Human-readable Table 4 report with per-router comparisons."""
    lines = ["Table 4 - Synthesis results of three routers (regenerated)", ""]
    for router, rows in reproduce_table4().items():
        lines.append(router)
        lines.append(format_table(rows, precision=4))
        lines.append("")
    lines.append(
        f"Area ratio packet/circuit: {measured_area_ratio():.2f} "
        f"(paper claim: ~{PAPER_AREA_RATIO})"
    )
    lines.append("")
    lines.append("Aethereal column provenance (quoted vs. simulated):")
    for quantity, provenance in aethereal_provenance().items():
        lines.append(f"  {quantity}: {provenance}")
    return "\n".join(lines)
