"""Experiment E-T3: the traffic scenarios of Table 3 / Fig. 8.

Table 3 defines three streams (Tile→East, North→Tile, West→East) and Fig. 8
composes them into four scenarios.  This module regenerates the stream table,
the scenario composition and a functional check: every scenario, when
simulated on either router, must actually deliver the traffic it offers (the
scenarios are the substrate of Figures 9 and 10, so their correctness is a
precondition for every power number in this repository).
"""

from __future__ import annotations

from typing import Dict, List

from repro.apps.traffic import SCENARIOS, TABLE3_STREAMS, BitFlipPattern
from repro.common import Port
from repro.experiments.harness import run_scenario
from repro.experiments.report import format_table

__all__ = [
    "table3_rows",
    "scenario_rows",
    "collision_analysis",
    "verify_scenarios",
    "verify_lifecycle",
    "format_report",
]


def table3_rows() -> List[dict]:
    """The three stream definitions exactly as in Table 3."""
    def port_label(port: Port, is_input: bool) -> str:
        if port == Port.TILE:
            return "Tile"
        return f"Router ({port.name.capitalize()})"

    return [
        {
            "stream": spec.stream_id,
            "input_port": port_label(spec.input_port, True),
            "output_port": port_label(spec.output_port, False),
        }
        for spec in TABLE3_STREAMS.values()
    ]


def scenario_rows() -> List[dict]:
    """The four scenario definitions of Section 6.1 / Fig. 8."""
    return [
        {
            "scenario": scenario.name,
            "streams": ", ".join(str(i) for i in scenario.stream_ids) or "-",
            "concurrent_streams": scenario.concurrent_streams,
            "description": scenario.description,
        }
        for scenario in SCENARIOS.values()
    ]


def collision_analysis() -> List[dict]:
    """Which scenarios make two streams share an output port (Section 7.3)."""
    rows: List[dict] = []
    for scenario in SCENARIOS.values():
        collisions = scenario.output_port_collisions()
        rows.append(
            {
                "scenario": scenario.name,
                "colliding_output_ports": ", ".join(p.name for p in collisions) or "-",
                "streams_on_busiest_port": max(collisions.values(), default=1 if scenario.stream_ids else 0),
            }
        )
    return rows


#: Words legitimately in flight when a scenario simulation stops, keyed by
#: canonical network kind: the packet-switched router keeps up to a few
#: packets in VC FIFOs, the circuit-switched router a handful of words in
#: its serialiser pipeline, the slot-table router at most one injection
#: queue per stream.
DELIVERY_TOLERANCE_WORDS = {
    "circuit_switched": 8,
    "packet_switched": 48,
    "time_division_gt": 16,
}


def verify_scenarios(
    cycles: int = 2000,
    pattern: BitFlipPattern = BitFlipPattern.TYPICAL,
    kinds: tuple = ("circuit", "packet", "gt"),
) -> Dict[str, Dict[str, bool]]:
    """Run every scenario on every router kind (any registry alias) and
    check traffic delivery."""
    from repro.noc.fabric import resolve_network_kind

    results: Dict[str, Dict[str, bool]] = {}
    for kind in kinds:
        canonical = resolve_network_kind(kind).kind
        tolerance = DELIVERY_TOLERANCE_WORDS.get(canonical, 48)
        results[kind] = {}
        for name in SCENARIOS:
            run = run_scenario(kind, name, pattern=pattern, cycles=cycles)
            results[kind][name] = run.delivery_ok(tolerance_words=tolerance)
    return results


def verify_lifecycle(
    cycles: int = 600,
    kinds: tuple = ("circuit", "packet", "gt"),
) -> Dict[str, Dict[str, bool]]:
    """Run one CCN admit → stream → release → re-admit cycle on every kind.

    The lifecycle analogue of :func:`verify_scenarios`: for each network kind
    the HiperLAN/2 receiver is admitted onto a live 4×4 network through the
    :class:`~repro.noc.ccn.CentralCoordinationNode`, its paced streams run
    for *cycles*, the application is released (checking that no lanes, slots
    or tiles leak) and admitted again (checking the re-admission is
    bit-identical).  Returns per-kind pass/fail flags.
    """
    from repro.apps import hiperlan2
    from repro.apps.traffic import word_generator
    from repro.noc.ccn import CentralCoordinationNode
    from repro.noc.fabric import build_network
    from repro.noc.topology import Mesh2D

    results: Dict[str, Dict[str, bool]] = {}
    for kind in kinds:
        network = build_network(kind, Mesh2D(4, 4), frequency_hz=100e6)
        ccn = CentralCoordinationNode(network=network)
        graph = hiperlan2.build_process_graph()
        first = ccn.admit(graph)
        ccn.attach_traffic(graph.name, word_generator(pattern=BitFlipPattern.TYPICAL, seed=7), load=0.5)
        network.run(cycles)
        delivered = sum(s["received"] for s in network.stream_statistics().values())
        ccn.release(graph.name)
        leak_free = ccn.leak_free()
        second = ccn.admit(graph)
        results[kind] = {
            "delivered": delivered > 0,
            "leak_free": leak_free,
            "readmission_identical": (
                second.mapping.placement == first.mapping.placement
                and [c.circuits for c in second.allocations]
                == [c.circuits for c in first.allocations]
            ),
        }
    return results


def format_report() -> str:
    """Human-readable Table 3 / Fig. 8 report."""
    lines = ["Table 3 - Stream definitions (regenerated)", ""]
    lines.append(format_table(table3_rows()))
    lines.append("")
    lines.append("Fig. 8 - Scenario composition")
    lines.append(format_table(scenario_rows()))
    lines.append("")
    lines.append("Output-port collisions (lane vs. time multiplexing, Section 7.3)")
    lines.append(format_table(collision_analysis()))
    return "\n".join(lines)
