"""Experiment E-F9: regenerate Figure 9.

Figure 9 shows, for both routers and the four traffic scenarios, the static
power and the two dynamic power components (internal cell and switching) at a
25 MHz clock, random data (50 % bit flips) and 100 % stream load over 200 µs.
This module runs those sixteen bars' worth of simulations and checks the
qualitative expectations of Section 7.3 (≈3.5× power advantage, small static
share, dominant data-independent offset).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.apps.traffic import SCENARIOS, BitFlipPattern
from repro.experiments.harness import DEFAULT_CYCLES, DEFAULT_FREQUENCY_HZ, run_scenario
from repro.experiments.paper_data import FIGURE9_EXPECTATIONS, PAPER_POWER_RATIO
from repro.experiments.report import format_table

__all__ = ["Figure9Data", "reproduce_figure9", "format_report"]

_ROUTERS = ("circuit_switched", "packet_switched")


@dataclass
class Figure9Data:
    """All bars of Figure 9 plus derived headline figures."""

    rows: List[dict]
    power_ratio_by_scenario: Dict[str, float]
    checks: Dict[str, bool]

    @property
    def mean_power_ratio(self) -> float:
        """Average packet/circuit total-power ratio over the four scenarios."""
        values = list(self.power_ratio_by_scenario.values())
        return sum(values) / len(values) if values else 0.0


def reproduce_figure9(
    frequency_hz: float = DEFAULT_FREQUENCY_HZ,
    cycles: int = DEFAULT_CYCLES,
    load: float = 1.0,
    pattern: BitFlipPattern = BitFlipPattern.TYPICAL,
) -> Figure9Data:
    """Run all router × scenario combinations of Figure 9."""
    rows: List[dict] = []
    totals: Dict[tuple[str, str], float] = {}
    dynamics: Dict[tuple[str, str], float] = {}
    statics: Dict[str, float] = {}

    for kind in ("circuit", "packet"):
        for name in SCENARIOS:
            run = run_scenario(
                kind, name, pattern=pattern, load=load, frequency_hz=frequency_hz, cycles=cycles
            )
            power = run.power
            rows.append(
                {
                    "router": run.router_kind,
                    "scenario": name,
                    "static_uw": power.static_uw,
                    "internal_uw": power.internal_uw,
                    "switching_uw": power.switching_uw,
                    "total_uw": power.total_uw,
                }
            )
            totals[(run.router_kind, name)] = power.total_uw
            dynamics[(run.router_kind, name)] = power.dynamic_uw
            statics[run.router_kind] = power.static_uw

    power_ratio = {
        name: totals[("packet_switched", name)] / totals[("circuit_switched", name)]
        for name in SCENARIOS
    }

    checks = {
        "power_ratio": all(
            FIGURE9_EXPECTATIONS["power_ratio"].check(ratio) for ratio in power_ratio.values()
        ),
        "static_fraction_circuit": FIGURE9_EXPECTATIONS["static_fraction_circuit"].check(
            statics["circuit_switched"] / totals[("circuit_switched", "IV")]
        ),
        "static_fraction_packet": FIGURE9_EXPECTATIONS["static_fraction_packet"].check(
            statics["packet_switched"] / totals[("packet_switched", "IV")]
        ),
        "offset_fraction": all(
            FIGURE9_EXPECTATIONS["offset_fraction"].check(
                dynamics[(router, "I")] / dynamics[(router, "IV")]
            )
            for router in _ROUTERS
        ),
    }
    return Figure9Data(rows=rows, power_ratio_by_scenario=power_ratio, checks=checks)


def format_report(data: Figure9Data | None = None) -> str:
    """Human-readable Figure 9 report."""
    if data is None:
        data = reproduce_figure9()
    lines = [
        "Figure 9 - Dynamic and static power for different scenarios",
        "(25 MHz, random data, 100 % load, 200 us)",
        "",
        format_table(data.rows, precision=1),
        "",
        "Packet/circuit total power ratio per scenario "
        f"(paper claim: ~{PAPER_POWER_RATIO}x):",
    ]
    for name, ratio in data.power_ratio_by_scenario.items():
        lines.append(f"  scenario {name}: {ratio:.2f}x")
    lines.append("")
    lines.append("Qualitative checks (Section 7.3):")
    for name, passed in data.checks.items():
        lines.append(f"  {name}: {'PASS' if passed else 'FAIL'}")
    return "\n".join(lines)
