"""Experiment E-T2: regenerate Table 2 (UMTS communication requirements).

Like Table 1, Table 2 follows from the standard's parameters: 3.84 Mchip/s,
8-bit I/Q chips, the spreading factor and the modulation.  The paper's worked
example (4 rake fingers, SF = 4, ≈320 Mbit/s total) is also checked.
"""

from __future__ import annotations

from typing import Dict, List

from repro.apps.umts import UmtsParameters, table2_rows, total_bandwidth_mbps
from repro.experiments.paper_data import TABLE2_PAPER_MBPS, TABLE2_PAPER_TOTAL_MBPS
from repro.experiments.report import comparison_rows, format_table

__all__ = ["measured_values", "reproduce_table2", "measured_total_mbps", "format_report"]


def measured_values(spreading_factor: int = 4) -> Dict[str, float]:
    """The reproduced Table 2 values keyed like :data:`TABLE2_PAPER_MBPS`."""
    qpsk = UmtsParameters(spreading_factor=spreading_factor, modulation="QPSK")
    qam16 = UmtsParameters(spreading_factor=spreading_factor, modulation="QAM-16")
    return {
        "chips_per_finger": qpsk.chip_bandwidth_mbps,
        "scrambling_code": qpsk.scrambling_bandwidth_mbps,
        "mrc_coefficient_per_finger_sf4": qpsk.mrc_bandwidth_mbps,
        "received_bits_qpsk_sf4": qpsk.received_bits_mbps,
        "received_bits_qam16_sf4": qam16.received_bits_mbps,
    }


def measured_total_mbps(rake_fingers: int = 4, spreading_factor: int = 4) -> float:
    """Total receiver bandwidth for the paper's worked example."""
    return total_bandwidth_mbps(
        UmtsParameters(rake_fingers=rake_fingers, spreading_factor=spreading_factor)
    )


def reproduce_table2() -> List[dict]:
    """Paper-vs-measured comparison rows for Table 2 (at SF = 4)."""
    return comparison_rows(measured_values(), TABLE2_PAPER_MBPS, label="edge")


def format_report() -> str:
    """Human-readable report: regenerated Table 2 plus comparison and total."""
    lines = ["Table 2 - Communication in UMTS (regenerated, SF = 4)", ""]
    lines.append(format_table(table2_rows(), precision=2))
    lines.append("")
    lines.append("Comparison against the published values:")
    lines.append(format_table(reproduce_table2(), precision=2))
    lines.append("")
    lines.append(
        f"Total bandwidth, 4 fingers at SF = 4: {measured_total_mbps():.1f} Mbit/s "
        f"(paper: ~{TABLE2_PAPER_TOTAL_MBPS:.0f} Mbit/s)"
    )
    return "\n".join(lines)
