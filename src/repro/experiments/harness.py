"""Single-router power-scenario harness (Sections 6 and 7.2).

The paper's power experiments place one router in a test bench, drive the
streams of Table 3 through it at 25 MHz and 100 % load for 200 µs (5000
cycles, 2 kB transported per stream) and report the static / internal /
switching power.  This module builds exactly that test bench for either
router so that Figures 9 and 10 can be regenerated with identical traffic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.apps.traffic import BitFlipPattern, Scenario, StreamSpec, scenario_by_name, word_generator
from repro.baseline.link import PacketLink
from repro.baseline.router import PacketSwitchedRouter
from repro.baseline.testbench import (
    PacketStreamConsumer,
    PacketStreamDriver,
    TilePacketConsumer,
    TilePacketDriver,
)
from repro.common import NEIGHBOR_PORTS, Port, ReproError, port_offset
from repro.core.lane import LaneLink
from repro.core.router import CircuitSwitchedRouter
from repro.core.testbench import (
    LaneStreamConsumer,
    LaneStreamDriver,
    TileStreamConsumer,
    TileStreamDriver,
)
from repro.energy.activity import ActivityCounters
from repro.energy.power import PowerBreakdown
from repro.energy.technology import TSMC_130NM_LVHP, Technology
from repro.sim.engine import SimulationKernel

__all__ = ["ScenarioRunResult", "run_circuit_scenario", "run_packet_scenario", "run_scenario"]

#: The paper's power-experiment defaults (Section 7.2).
DEFAULT_FREQUENCY_HZ = 25e6
DEFAULT_CYCLES = 5000  # 200 µs at 25 MHz


@dataclass
class ScenarioRunResult:
    """Outcome of one single-router scenario simulation."""

    router_kind: str
    scenario: str
    pattern: BitFlipPattern
    load: float
    frequency_hz: float
    cycles: int
    power: PowerBreakdown
    words_sent: Dict[int, int] = field(default_factory=dict)
    words_received: Dict[int, int] = field(default_factory=dict)
    activity: Optional[ActivityCounters] = None

    @property
    def duration_s(self) -> float:
        """Simulated duration of the run."""
        return self.cycles / self.frequency_hz

    @property
    def transported_bytes(self) -> float:
        """Payload bytes transported across all streams (paper: 2 kB per stream)."""
        return sum(self.words_received.values()) * 2.0

    def delivery_ok(self, tolerance_words: int = 8) -> bool:
        """True when every stream delivered (almost) everything that was sent.

        A few words are always in flight in the pipeline when the simulation
        stops, hence the small tolerance.
        """
        for stream_id, sent in self.words_sent.items():
            received = self.words_received.get(stream_id, 0)
            if sent - received > tolerance_words:
                return False
        return True


def _neighbor_position(position: tuple[int, int], port: Port) -> tuple[int, int]:
    dx, dy = port_offset(port)
    return (position[0] + dx, position[1] + dy)


def _attach_neighbor_links(router, make_link):
    """Attach a fresh rx/tx channel pair to every neighbour port of *router*.

    ``make_link(name)`` builds one directed channel; returns the per-port
    ``(rx, tx)`` pairs so drivers and consumers can hook onto them.
    """
    links = {}
    for port in NEIGHBOR_PORTS:
        rx = make_link(f"rx_{port.short_name}")
        tx = make_link(f"tx_{port.short_name}")
        router.attach_link(port, rx, tx)
        links[port] = (rx, tx)
    return links


def _run_testbench(kernel: SimulationKernel, components, router, cycles: int) -> None:
    """Register the endpoints (deduplicated) and the router, then run.

    Several streams may share one physical consumer; registration
    deduplicates by object identity.  The router is appended last so stream
    pacing decisions see the router state committed in the same cycle.
    """
    seen: set[int] = set()
    for component in components:
        if id(component) in seen:
            continue
        seen.add(id(component))
        kernel.add(component)
    kernel.add(router)
    kernel.run(cycles)


def _scenario_result(
    router_kind: str,
    scenario: Scenario,
    pattern: BitFlipPattern,
    load: float,
    frequency_hz: float,
    cycles: int,
    router,
    drivers: Dict[int, object],
) -> ScenarioRunResult:
    """Assemble the common part of a scenario report (power, activity, sent words)."""
    result = ScenarioRunResult(
        router_kind=router_kind,
        scenario=scenario.name,
        pattern=pattern,
        load=load,
        frequency_hz=frequency_hz,
        cycles=cycles,
        power=router.power(frequency_hz, cycles),
        activity=router.activity,
    )
    for stream_id, driver in drivers.items():
        result.words_sent[stream_id] = driver.words_sent
    return result


def run_circuit_scenario(
    scenario: Scenario | str,
    pattern: BitFlipPattern = BitFlipPattern.TYPICAL,
    load: float = 1.0,
    frequency_hz: float = DEFAULT_FREQUENCY_HZ,
    cycles: int = DEFAULT_CYCLES,
    clock_gating: bool = False,
    seed: int = 0,
    tech: Technology = TSMC_130NM_LVHP,
) -> ScenarioRunResult:
    """Run one scenario on the circuit-switched router and estimate its power."""
    if isinstance(scenario, str):
        scenario = scenario_by_name(scenario)
    router = CircuitSwitchedRouter("dut", clock_gating=clock_gating, tech=tech)
    kernel = SimulationKernel(frequency_hz)
    links: Dict[Port, tuple[LaneLink, LaneLink]] = _attach_neighbor_links(router, LaneLink)

    drivers: Dict[int, object] = {}
    consumers: Dict[int, object] = {}
    out_lane_use: Dict[Port, int] = {}
    in_lane_use: Dict[Port, int] = {}

    # Build one driver/consumer pair per stream and configure the crossbar.
    components = []
    for stream in scenario.streams:
        source = word_generator(pattern, width=router.data_width, seed=seed + stream.stream_id)
        out_lane = out_lane_use.get(stream.output_port, 0)
        out_lane_use[stream.output_port] = out_lane + 1
        in_lane = in_lane_use.get(stream.input_port, 0)
        in_lane_use[stream.input_port] = in_lane + 1
        router.configure(stream.output_port, out_lane, stream.input_port, in_lane)

        if stream.enters_at_tile:
            driver = TileStreamDriver(f"s{stream.stream_id}_src", router, in_lane, source, load)
        else:
            driver = LaneStreamDriver(
                f"s{stream.stream_id}_src", links[stream.input_port][0], in_lane, source, load
            )
        if stream.leaves_at_tile:
            consumer = TileStreamConsumer(f"s{stream.stream_id}_dst", router, out_lane)
        else:
            consumer = LaneStreamConsumer(
                f"s{stream.stream_id}_dst", links[stream.output_port][1], out_lane
            )
        drivers[stream.stream_id] = driver
        consumers[stream.stream_id] = consumer
        components.extend([driver, consumer])

    _run_testbench(kernel, components, router, cycles)

    result = _scenario_result(
        "circuit_switched", scenario, pattern, load, frequency_hz, cycles, router, drivers
    )
    for stream_id, consumer in consumers.items():
        result.words_received[stream_id] = consumer.words_received
    return result


def run_packet_scenario(
    scenario: Scenario | str,
    pattern: BitFlipPattern = BitFlipPattern.TYPICAL,
    load: float = 1.0,
    frequency_hz: float = DEFAULT_FREQUENCY_HZ,
    cycles: int = DEFAULT_CYCLES,
    words_per_packet: int = 16,
    seed: int = 0,
    tech: Technology = TSMC_130NM_LVHP,
) -> ScenarioRunResult:
    """Run one scenario on the packet-switched baseline router."""
    if isinstance(scenario, str):
        scenario = scenario_by_name(scenario)
    position = (1, 1)  # keep all four neighbours inside a virtual mesh
    router = PacketSwitchedRouter(
        "dut", position=position, words_per_packet=words_per_packet, tech=tech
    )
    kernel = SimulationKernel(frequency_hz)
    links: Dict[Port, tuple[PacketLink, PacketLink]] = _attach_neighbor_links(
        router, lambda name: PacketLink(name, router.num_vcs)
    )

    drivers: Dict[int, object] = {}
    consumers: Dict[int, object] = {}
    link_consumers: Dict[Port, PacketStreamConsumer] = {}
    tile_consumer: Optional[TilePacketConsumer] = None
    components = []
    next_vc = 0
    for stream in scenario.streams:
        source = word_generator(pattern, width=router.data_width, seed=seed + stream.stream_id)
        vc = next_vc % router.num_vcs
        next_vc += 1
        dest = (
            position
            if stream.leaves_at_tile
            else _neighbor_position(position, stream.output_port)
        )
        if stream.enters_at_tile:
            driver = TilePacketDriver(
                f"s{stream.stream_id}_src", router, source, dest, load, vc, words_per_packet
            )
        else:
            src_position = _neighbor_position(position, stream.input_port)
            driver = PacketStreamDriver(
                f"s{stream.stream_id}_src",
                links[stream.input_port][0],
                source,
                dest,
                src_position,
                load,
                vc,
                words_per_packet,
                router.fifo_depth,
            )
        if stream.leaves_at_tile:
            if tile_consumer is None:
                tile_consumer = TilePacketConsumer(f"s{stream.stream_id}_dst", router)
            consumer = tile_consumer
        else:
            # Streams sharing an output port share one physical downstream
            # router; model it with a single consumer per link.
            if stream.output_port not in link_consumers:
                link_consumers[stream.output_port] = PacketStreamConsumer(
                    f"link_{stream.output_port.short_name}_dst", links[stream.output_port][1]
                )
            consumer = link_consumers[stream.output_port]
        drivers[stream.stream_id] = driver
        consumers[stream.stream_id] = consumer
        components.extend([driver, consumer])

    _run_testbench(kernel, components, router, cycles)

    result = _scenario_result(
        "packet_switched", scenario, pattern, load, frequency_hz, cycles, router, drivers
    )
    # Per-stream delivery accounting: streams ending at the tile are counted
    # at the tile interface; streams sharing an output link share one physical
    # consumer, whose total is attributed in equal shares (enough for the
    # delivery sanity checks; power does not depend on it).
    shared: Dict[int, List[int]] = {}
    shared_consumers: Dict[int, PacketStreamConsumer] = {}
    for stream_id, consumer in consumers.items():
        if isinstance(consumer, TilePacketConsumer):
            result.words_received[stream_id] = consumer.words_received
        else:
            shared.setdefault(id(consumer), []).append(stream_id)
            shared_consumers[id(consumer)] = consumer
    for consumer_id, stream_ids in shared.items():
        share = shared_consumers[consumer_id].words_received // len(stream_ids)
        for stream_id in stream_ids:
            result.words_received[stream_id] = share
    return result


def run_scenario(router_kind: str, scenario: Scenario | str, **kwargs) -> ScenarioRunResult:
    """Dispatch to the circuit- or packet-switched harness by name."""
    kind = router_kind.lower()
    if kind in ("circuit", "circuit_switched", "cs"):
        return run_circuit_scenario(scenario, **kwargs)
    if kind in ("packet", "packet_switched", "ps"):
        return run_packet_scenario(scenario, **kwargs)
    raise ReproError(f"unknown router kind {router_kind!r}")
