"""Scenario harnesses: single-router power scenarios and system-level app traffic.

The paper's power experiments place one router in a test bench, drive the
streams of Table 3 through it at 25 MHz and 100 % load for 200 µs (5000
cycles, 2 kB transported per stream) and report the static / internal /
switching power.  This module builds exactly that test bench for every
simulated router kind so that Figures 9 and 10 can be regenerated with
identical traffic.  Dispatch is *registry-driven*: :func:`run_scenario`
resolves the kind (with every alias) through the
:func:`repro.noc.fabric.build_network` registry and looks the runner up in a
table populated by :func:`register_scenario_runner` — adding a network kind
needs no harness edits.

Beyond the paper's single-router experiments, :func:`run_app_traffic` runs a
whole application process graph (UMTS, HiperLAN/2, DRM) end to end on *any*
registered network kind on *any* topology: the application is spatially
mapped once (deterministically, so every kind sees the same placement), each
guaranteed-throughput channel is admitted through the network's own
admission controller via :meth:`repro.noc.fabric.NocBase.attach_channel`,
and the delivered words / power / energy-per-bit are collected into an
:class:`AppTrafficResult`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.apps.kpn import ProcessGraph, TrafficClass
from repro.apps.traffic import BitFlipPattern, Scenario, StreamSpec, scenario_by_name, word_generator
from repro.baseline.link import PacketLink
from repro.baseline.router import PacketSwitchedRouter
from repro.baseline.testbench import (
    PacketStreamConsumer,
    PacketStreamDriver,
    TilePacketConsumer,
    TilePacketDriver,
)
from repro.common import NEIGHBOR_PORTS, Port, ReproError, port_offset
from repro.core.lane import LaneLink
from repro.core.router import CircuitSwitchedRouter
from repro.core.testbench import (
    LaneStreamConsumer,
    LaneStreamDriver,
    TileStreamConsumer,
    TileStreamDriver,
)
from repro.energy.activity import ActivityCounters
from repro.energy.power import PowerBreakdown
from repro.energy.technology import TSMC_130NM_LVHP, Technology
from repro.noc.fabric import NocBase, build_network, resolve_network_kind
from repro.noc.gt_network import (
    GtLinkStreamConsumer,
    GtLinkStreamDriver,
    GtStreamDriver,
    SlotTableRouter,
    TdmaLink,
)
from repro.noc.mapping import Mapping
from repro.noc.topology import Topology
from repro.sim.engine import SimulationKernel

__all__ = [
    "ScenarioRunResult",
    "register_scenario_runner",
    "run_circuit_scenario",
    "run_packet_scenario",
    "run_gt_scenario",
    "run_scenario",
    "AppTrafficResult",
    "run_app_traffic",
]

#: The paper's power-experiment defaults (Section 7.2).
DEFAULT_FREQUENCY_HZ = 25e6
DEFAULT_CYCLES = 5000  # 200 µs at 25 MHz


@dataclass
class ScenarioRunResult:
    """Outcome of one single-router scenario simulation."""

    router_kind: str
    scenario: str
    pattern: BitFlipPattern
    load: float
    frequency_hz: float
    cycles: int
    power: PowerBreakdown
    words_sent: Dict[int, int] = field(default_factory=dict)
    words_received: Dict[int, int] = field(default_factory=dict)
    activity: Optional[ActivityCounters] = None

    @property
    def duration_s(self) -> float:
        """Simulated duration of the run."""
        return self.cycles / self.frequency_hz

    @property
    def transported_bytes(self) -> float:
        """Payload bytes transported across all streams (paper: 2 kB per stream)."""
        return sum(self.words_received.values()) * 2.0

    def delivery_ok(self, tolerance_words: int = 8) -> bool:
        """True when every stream delivered (almost) everything that was sent.

        A few words are always in flight in the pipeline when the simulation
        stops, hence the small tolerance.
        """
        for stream_id, sent in self.words_sent.items():
            received = self.words_received.get(stream_id, 0)
            if sent - received > tolerance_words:
                return False
        return True


# ---------------------------------------------------------------------------
# Registry of single-router scenario runners, keyed by canonical network kind
# ---------------------------------------------------------------------------

_SCENARIO_RUNNERS: Dict[str, Callable[..., "ScenarioRunResult"]] = {}


def register_scenario_runner(canonical_kind: str) -> Callable:
    """Register a Table-3 scenario runner for one canonical network kind.

    The key must match the network class's :attr:`~repro.noc.fabric.NocBase
    .kind`; :func:`run_scenario` resolves user-facing aliases through the
    ``build_network`` registry first, so a runner registered here serves
    every alias of its kind automatically.
    """

    def decorator(fn: Callable[..., "ScenarioRunResult"]) -> Callable[..., "ScenarioRunResult"]:
        _SCENARIO_RUNNERS[canonical_kind] = fn
        return fn

    return decorator


def _neighbor_position(position: tuple[int, int], port: Port) -> tuple[int, int]:
    dx, dy = port_offset(port)
    return (position[0] + dx, position[1] + dy)


def _attach_neighbor_links(router, make_link):
    """Attach a fresh rx/tx channel pair to every neighbour port of *router*.

    ``make_link(name)`` builds one directed channel; returns the per-port
    ``(rx, tx)`` pairs so drivers and consumers can hook onto them.
    """
    links = {}
    for port in NEIGHBOR_PORTS:
        rx = make_link(f"rx_{port.short_name}")
        tx = make_link(f"tx_{port.short_name}")
        router.attach_link(port, rx, tx)
        links[port] = (rx, tx)
    return links


def _run_testbench(kernel: SimulationKernel, components, router, cycles: int) -> None:
    """Register the endpoints (deduplicated) and the router, then run.

    Several streams may share one physical consumer; registration
    deduplicates by object identity.  The router is appended last so stream
    pacing decisions see the router state committed in the same cycle.
    """
    seen: set[int] = set()
    for component in components:
        if id(component) in seen:
            continue
        seen.add(id(component))
        kernel.add(component)
    kernel.add(router)
    kernel.run(cycles)


def _scenario_result(
    router_kind: str,
    scenario: Scenario,
    pattern: BitFlipPattern,
    load: float,
    frequency_hz: float,
    cycles: int,
    router,
    drivers: Dict[int, object],
) -> ScenarioRunResult:
    """Assemble the common part of a scenario report (power, activity, sent words)."""
    result = ScenarioRunResult(
        router_kind=router_kind,
        scenario=scenario.name,
        pattern=pattern,
        load=load,
        frequency_hz=frequency_hz,
        cycles=cycles,
        power=router.power(frequency_hz, cycles),
        activity=router.activity,
    )
    for stream_id, driver in drivers.items():
        result.words_sent[stream_id] = driver.words_sent
    return result


@register_scenario_runner("circuit_switched")
def run_circuit_scenario(
    scenario: Scenario | str,
    pattern: BitFlipPattern = BitFlipPattern.TYPICAL,
    load: float = 1.0,
    frequency_hz: float = DEFAULT_FREQUENCY_HZ,
    cycles: int = DEFAULT_CYCLES,
    clock_gating: bool = False,
    seed: int = 0,
    tech: Technology = TSMC_130NM_LVHP,
) -> ScenarioRunResult:
    """Run one scenario on the circuit-switched router and estimate its power."""
    if isinstance(scenario, str):
        scenario = scenario_by_name(scenario)
    router = CircuitSwitchedRouter("dut", clock_gating=clock_gating, tech=tech)
    kernel = SimulationKernel(frequency_hz)
    links: Dict[Port, tuple[LaneLink, LaneLink]] = _attach_neighbor_links(router, LaneLink)

    drivers: Dict[int, object] = {}
    consumers: Dict[int, object] = {}
    out_lane_use: Dict[Port, int] = {}
    in_lane_use: Dict[Port, int] = {}

    # Build one driver/consumer pair per stream and configure the crossbar.
    components = []
    for stream in scenario.streams:
        source = word_generator(pattern, width=router.data_width, seed=seed + stream.stream_id)
        out_lane = out_lane_use.get(stream.output_port, 0)
        out_lane_use[stream.output_port] = out_lane + 1
        in_lane = in_lane_use.get(stream.input_port, 0)
        in_lane_use[stream.input_port] = in_lane + 1
        router.configure(stream.output_port, out_lane, stream.input_port, in_lane)

        if stream.enters_at_tile:
            driver = TileStreamDriver(f"s{stream.stream_id}_src", router, in_lane, source, load)
        else:
            driver = LaneStreamDriver(
                f"s{stream.stream_id}_src", links[stream.input_port][0], in_lane, source, load
            )
        if stream.leaves_at_tile:
            consumer = TileStreamConsumer(f"s{stream.stream_id}_dst", router, out_lane)
        else:
            consumer = LaneStreamConsumer(
                f"s{stream.stream_id}_dst", links[stream.output_port][1], out_lane
            )
        drivers[stream.stream_id] = driver
        consumers[stream.stream_id] = consumer
        components.extend([driver, consumer])

    _run_testbench(kernel, components, router, cycles)

    result = _scenario_result(
        "circuit_switched", scenario, pattern, load, frequency_hz, cycles, router, drivers
    )
    for stream_id, consumer in consumers.items():
        result.words_received[stream_id] = consumer.words_received
    return result


@register_scenario_runner("packet_switched")
def run_packet_scenario(
    scenario: Scenario | str,
    pattern: BitFlipPattern = BitFlipPattern.TYPICAL,
    load: float = 1.0,
    frequency_hz: float = DEFAULT_FREQUENCY_HZ,
    cycles: int = DEFAULT_CYCLES,
    words_per_packet: int = 16,
    seed: int = 0,
    tech: Technology = TSMC_130NM_LVHP,
) -> ScenarioRunResult:
    """Run one scenario on the packet-switched baseline router."""
    if isinstance(scenario, str):
        scenario = scenario_by_name(scenario)
    position = (1, 1)  # keep all four neighbours inside a virtual mesh
    router = PacketSwitchedRouter(
        "dut", position=position, words_per_packet=words_per_packet, tech=tech
    )
    kernel = SimulationKernel(frequency_hz)
    links: Dict[Port, tuple[PacketLink, PacketLink]] = _attach_neighbor_links(
        router, lambda name: PacketLink(name, router.num_vcs)
    )

    drivers: Dict[int, object] = {}
    consumers: Dict[int, object] = {}
    link_consumers: Dict[Port, PacketStreamConsumer] = {}
    tile_consumer: Optional[TilePacketConsumer] = None
    components = []
    next_vc = 0
    for stream in scenario.streams:
        source = word_generator(pattern, width=router.data_width, seed=seed + stream.stream_id)
        vc = next_vc % router.num_vcs
        next_vc += 1
        dest = (
            position
            if stream.leaves_at_tile
            else _neighbor_position(position, stream.output_port)
        )
        if stream.enters_at_tile:
            driver = TilePacketDriver(
                f"s{stream.stream_id}_src", router, source, dest, load, vc, words_per_packet
            )
        else:
            src_position = _neighbor_position(position, stream.input_port)
            driver = PacketStreamDriver(
                f"s{stream.stream_id}_src",
                links[stream.input_port][0],
                source,
                dest,
                src_position,
                load,
                vc,
                words_per_packet,
                router.fifo_depth,
            )
        if stream.leaves_at_tile:
            if tile_consumer is None:
                tile_consumer = TilePacketConsumer(f"s{stream.stream_id}_dst", router)
            consumer = tile_consumer
        else:
            # Streams sharing an output port share one physical downstream
            # router; model it with a single consumer per link.
            if stream.output_port not in link_consumers:
                link_consumers[stream.output_port] = PacketStreamConsumer(
                    f"link_{stream.output_port.short_name}_dst", links[stream.output_port][1]
                )
            consumer = link_consumers[stream.output_port]
        drivers[stream.stream_id] = driver
        consumers[stream.stream_id] = consumer
        components.extend([driver, consumer])

    _run_testbench(kernel, components, router, cycles)

    result = _scenario_result(
        "packet_switched", scenario, pattern, load, frequency_hz, cycles, router, drivers
    )
    # Per-stream delivery accounting: streams ending at the tile are counted
    # at the tile interface; streams sharing an output link share one physical
    # consumer, whose total is attributed in equal shares (enough for the
    # delivery sanity checks; power does not depend on it).
    shared: Dict[int, List[int]] = {}
    shared_consumers: Dict[int, PacketStreamConsumer] = {}
    for stream_id, consumer in consumers.items():
        if isinstance(consumer, TilePacketConsumer):
            result.words_received[stream_id] = consumer.words_received
        else:
            shared.setdefault(id(consumer), []).append(stream_id)
            shared_consumers[id(consumer)] = consumer
    for consumer_id, stream_ids in shared.items():
        share = shared_consumers[consumer_id].words_received // len(stream_ids)
        for stream_id in stream_ids:
            result.words_received[stream_id] = share
    return result


@register_scenario_runner("time_division_gt")
def run_gt_scenario(
    scenario: Scenario | str,
    pattern: BitFlipPattern = BitFlipPattern.TYPICAL,
    load: float = 1.0,
    frequency_hz: float = DEFAULT_FREQUENCY_HZ,
    cycles: int = DEFAULT_CYCLES,
    slots: int = 16,
    slots_per_stream: int = 4,
    data_width: int = 16,
    seed: int = 0,
    tech: Technology = TSMC_130NM_LVHP,
) -> ScenarioRunResult:
    """Run one Table-3 scenario on the Æthereal-style slot-table router.

    Every stream owns *slots_per_stream* slots of the revolving table on its
    input and output side (streams sharing a port get disjoint slots — the
    TDMA equivalent of the circuit-switched harness handing out lanes), so at
    100 % load a stream offers one word per owned slot per revolution.
    """
    if isinstance(scenario, str):
        scenario = scenario_by_name(scenario)
    router = SlotTableRouter("dut", slots=slots, data_width=data_width, tech=tech)
    kernel = SimulationKernel(frequency_hz)
    links: Dict[Port, tuple[TdmaLink, TdmaLink]] = _attach_neighbor_links(
        router, lambda name: TdmaLink(name, data_width)
    )

    in_used: Dict[Port, set] = {}
    out_used: Dict[Port, set] = {}
    drivers: Dict[int, object] = {}
    consumers: Dict[int, object] = {}
    link_consumers: Dict[Port, GtLinkStreamConsumer] = {}
    components = []
    for stream in scenario.streams:
        # Disjoint slots on both the input and the output side of the stream.
        taken_in = in_used.setdefault(stream.input_port, set())
        taken_out = out_used.setdefault(stream.output_port, set())
        stream_slots = [
            s for s in range(slots) if s not in taken_in and s not in taken_out
        ][:slots_per_stream]
        if len(stream_slots) < slots_per_stream:
            raise ReproError(
                f"slot table of size {slots} cannot fit {slots_per_stream} slot(s) "
                f"for stream {stream.stream_id} of scenario {scenario.name!r}"
            )
        taken_in.update(stream_slots)
        taken_out.update(stream_slots)
        connection = f"s{stream.stream_id}"
        for slot in stream_slots:
            router.program(stream.output_port, slot, stream.input_port, connection)

        source = word_generator(pattern, width=router.data_width, seed=seed + stream.stream_id)
        if stream.enters_at_tile:
            driver = GtStreamDriver(
                f"s{stream.stream_id}_src",
                router,
                connection,
                source,
                load,
                cycles_per_word=max(1, slots // slots_per_stream),
            )
        else:
            driver = GtLinkStreamDriver(
                f"s{stream.stream_id}_src",
                links[stream.input_port][0],
                slots,
                frozenset(stream_slots),
                source,
                load,
            )
        if stream.leaves_at_tile:
            consumer = None  # delivery is read off the tile interface
        else:
            if stream.output_port not in link_consumers:
                link_consumers[stream.output_port] = GtLinkStreamConsumer(
                    f"link_{stream.output_port.short_name}_dst",
                    links[stream.output_port][1],
                    slots,
                )
            consumer = link_consumers[stream.output_port]
            consumer.claim(stream.stream_id, frozenset(stream_slots))
        drivers[stream.stream_id] = driver
        consumers[stream.stream_id] = consumer
        components.append(driver)
        if consumer is not None:
            components.append(consumer)

    _run_testbench(kernel, components, router, cycles)

    result = _scenario_result(
        "time_division_gt", scenario, pattern, load, frequency_hz, cycles, router, drivers
    )
    for stream in scenario.streams:
        consumer = consumers[stream.stream_id]
        if consumer is None:
            result.words_received[stream.stream_id] = router.tile.words_received(
                f"s{stream.stream_id}"
            )
        else:
            result.words_received[stream.stream_id] = consumer.words_received_for(
                stream.stream_id
            )
    return result


def run_scenario(router_kind: str, scenario: Scenario | str, **kwargs) -> ScenarioRunResult:
    """Dispatch to a single-router scenario harness by network kind.

    *router_kind* accepts every name/alias of the ``build_network`` registry
    (``circuit``/``cs``, ``packet``/``ps``, ``gt``/``aethereal``/``tdma``);
    the runner is looked up by the resolved class's canonical kind, so new
    network kinds plug in via :func:`register_scenario_runner` without any
    edits here.
    """
    cls = resolve_network_kind(router_kind)
    try:
        runner = _SCENARIO_RUNNERS[cls.kind]
    except KeyError:
        raise ReproError(
            f"network kind {cls.kind!r} has no registered scenario runner"
        ) from None
    return runner(scenario, **kwargs)


# ---------------------------------------------------------------------------
# System-level application traffic on any network kind / topology
# ---------------------------------------------------------------------------


@dataclass
class AppTrafficResult:
    """Outcome of one application process graph run on one network kind."""

    kind: str
    application: str
    frequency_hz: float
    cycles: int
    load: float
    #: Sum of router counts along every non-local GT channel's minimal route
    #: (a topology metric, identical across kinds on the same fabric).
    route_hops: int
    words_sent: Dict[str, int] = field(default_factory=dict)
    words_received: Dict[str, int] = field(default_factory=dict)
    power: Optional[PowerBreakdown] = None
    energy_pj_per_bit: float = float("inf")
    mapping: Optional[Mapping] = None
    network: Optional[NocBase] = field(default=None, repr=False)

    @property
    def total_sent(self) -> int:
        """Words injected across all channels."""
        return sum(self.words_sent.values())

    @property
    def total_received(self) -> int:
        """Words delivered across all channels."""
        return sum(self.words_received.values())

    def delivery_ok(self, tolerance_words: int = 64) -> bool:
        """True when every channel delivered (almost) everything that was sent.

        The tolerance covers words still queued at the source tile or in
        flight in the fabric when the simulation stops.
        """
        for name, sent in self.words_sent.items():
            received = self.words_received.get(name, 0)
            if sent - received > tolerance_words:
                return False
            if sent > 0 and received == 0:
                return False
        return True


def run_app_traffic(
    kind: str,
    topology: Topology,
    graph: ProcessGraph,
    frequency_hz: float = 100e6,
    cycles: int = 3000,
    load: float = 0.5,
    seed: int = 0,
    schedule: str = "auto",
    **params,
) -> AppTrafficResult:
    """Run one application's GT traffic end to end on any network kind.

    The process graph is spatially mapped once (the mapper is deterministic,
    so every kind sees the identical placement on the same topology), every
    guaranteed-throughput channel is admitted through the network's own
    admission controller via ``attach_channel`` (lane circuits, slot
    schedules, or nothing for packet switching), and the identical word
    streams then run for *cycles* network cycles.
    """
    network = build_network(
        kind, topology, frequency_hz=frequency_hz, schedule=schedule, **params
    )
    # The whole admission pipeline runs through the CCN lifecycle engine:
    # feasibility, deterministic mapping, allocation on the network's own
    # admission controller, router programming, then stream attachment —
    # identical placement and traffic on every kind.
    from repro.noc.ccn import CentralCoordinationNode

    ccn = CentralCoordinationNode(network=network)
    admission = ccn.admit(graph)
    mapping = admission.mapping
    generator = word_generator(BitFlipPattern.TYPICAL, seed=seed)
    ccn.attach_traffic(graph.name, generator, load=load)

    route_hops = 0
    for channel in graph.channels:
        if channel.traffic_class != TrafficClass.GUARANTEED_THROUGHPUT:
            continue
        src = mapping.position_of(channel.src)
        dst = mapping.position_of(channel.dst)
        if src == dst:
            continue  # tile-local: no network resources on any kind
        route_hops += topology.distance(src, dst) + 1

    network.run(cycles)

    result = AppTrafficResult(
        kind=network.kind,
        application=graph.name,
        frequency_hz=frequency_hz,
        cycles=cycles,
        load=load,
        route_hops=route_hops,
        power=network.total_power(),
        energy_pj_per_bit=network.energy_per_delivered_bit_pj(),
        mapping=mapping,
        network=network,
    )
    for name, stats in network.stream_statistics().items():
        result.words_sent[name] = stats["sent"]
        result.words_received[name] = stats["received"]
    return result
