"""Experiment harnesses that regenerate every table and figure of the paper.

One module per published artefact (see DESIGN.md §4 for the full index):

========  ======================================  ==========================
artefact  module                                  what it checks
========  ======================================  ==========================
Table 1   :mod:`repro.experiments.table1`         HiperLAN/2 edge bandwidths
Table 2   :mod:`repro.experiments.table2`         UMTS edge bandwidths
Table 3   :mod:`repro.experiments.scenarios`      stream / scenario definitions
Table 4   :mod:`repro.experiments.table4`         router synthesis results
Fig. 9    :mod:`repro.experiments.figure9`        power per scenario
Fig. 10   :mod:`repro.experiments.figure10`       power vs. bit flips
ablations :mod:`repro.experiments.ablations`      clock gating, lanes, window
dynamic   :mod:`repro.experiments.dynamic`        CCN-driven application churn
storm     :mod:`repro.experiments.storm`          failure storms, survivability
========  ======================================  ==========================
"""

from repro.experiments.harness import (
    DEFAULT_CYCLES,
    DEFAULT_FREQUENCY_HZ,
    ScenarioRunResult,
    run_circuit_scenario,
    run_packet_scenario,
    run_scenario,
)
from repro.experiments.dynamic import (
    DynamicWorkloadResult,
    WorkloadEvent,
    paper_churn_events,
    run_dynamic_workload,
)
from repro.experiments.storm import (
    StormOutcome,
    run_storm,
    storm_schedule,
    sweep_storms,
    telemetry_columns,
)
from repro.experiments import (
    ablations,
    dynamic,
    figure9,
    figure10,
    paper_data,
    report,
    scenarios,
    storm,
    table1,
    table2,
    table4,
)

__all__ = [
    "DEFAULT_CYCLES",
    "DEFAULT_FREQUENCY_HZ",
    "ScenarioRunResult",
    "run_circuit_scenario",
    "run_packet_scenario",
    "run_scenario",
    "DynamicWorkloadResult",
    "WorkloadEvent",
    "paper_churn_events",
    "run_dynamic_workload",
    "StormOutcome",
    "run_storm",
    "storm_schedule",
    "sweep_storms",
    "telemetry_columns",
    "ablations",
    "dynamic",
    "figure9",
    "figure10",
    "paper_data",
    "report",
    "scenarios",
    "storm",
    "table1",
    "table2",
    "table4",
]
