"""Experiment E-T1: regenerate Table 1 (HiperLAN/2 communication requirements).

Table 1 is an arithmetic consequence of the HiperLAN/2 physical-layer
parameters (80-sample OFDM symbols every 4 µs, 16-bit I/Q quantisation); the
application model derives the same numbers from first principles, so the
reproduction must match exactly.
"""

from __future__ import annotations

from typing import Dict, List

from repro.apps.hiperlan2 import Hiperlan2Parameters, edge_bandwidths_mbps, table1_rows
from repro.experiments.paper_data import TABLE1_PAPER_MBPS
from repro.experiments.report import comparison_rows, format_table

__all__ = ["measured_values", "reproduce_table1", "format_report"]


def measured_values() -> Dict[str, float]:
    """The reproduced Table 1 values keyed like :data:`TABLE1_PAPER_MBPS`."""
    bandwidths = edge_bandwidths_mbps(Hiperlan2Parameters(modulation="BPSK"))
    qam64 = Hiperlan2Parameters(modulation="QAM-64")
    return {
        "sp_to_prefix_removal": bandwidths["sp_to_prefix_removal"],
        "prefix_removal_to_fft": bandwidths["prefix_removal_to_fft"],
        "fft_to_channel_eq": bandwidths["fft_to_channel_eq"],
        "channel_eq_to_demap": bandwidths["channel_eq_to_demap"],
        "hard_bits_bpsk": bandwidths["hard_bits"],
        "hard_bits_qam64": qam64.hard_bit_rate_mbps,
    }


def reproduce_table1() -> List[dict]:
    """Paper-vs-measured comparison rows for Table 1."""
    return comparison_rows(measured_values(), TABLE1_PAPER_MBPS, label="edge")


def format_report() -> str:
    """Human-readable report: the regenerated table plus the comparison."""
    lines = ["Table 1 - Communication in HiperLAN/2 (regenerated)", ""]
    lines.append(format_table(table1_rows(), precision=1))
    lines.append("")
    lines.append("Comparison against the published values:")
    lines.append(format_table(reproduce_table1(), precision=2))
    return "\n".join(lines)
