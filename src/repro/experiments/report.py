"""Report formatting helpers: tables and paper-vs-measured comparisons.

All experiment modules return plain lists of dictionaries ("rows"); these
helpers render them as aligned ASCII / Markdown tables and compute relative
errors against the published values so the benchmarks and EXPERIMENTS.md can
print self-contained summaries.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence

__all__ = ["format_table", "relative_error", "comparison_rows", "format_comparison"]


def _format_value(value: object, precision: int) -> str:
    if isinstance(value, float):
        return f"{value:.{precision}f}"
    return str(value)


def format_table(
    rows: Sequence[Mapping[str, object]],
    columns: Optional[Sequence[str]] = None,
    precision: int = 3,
    markdown: bool = True,
) -> str:
    """Render rows (list of dicts) as an aligned Markdown-style table."""
    if not rows:
        return "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())
    header = [str(c) for c in columns]
    body = [
        [_format_value(row.get(column, ""), precision) for column in columns] for row in rows
    ]
    widths = [
        max(len(header[i]), max((len(line[i]) for line in body), default=0))
        for i in range(len(columns))
    ]

    def render(cells: List[str]) -> str:
        padded = [cells[i].ljust(widths[i]) for i in range(len(cells))]
        return "| " + " | ".join(padded) + " |"

    lines = [render(header)]
    if markdown:
        lines.append("|" + "|".join("-" * (w + 2) for w in widths) + "|")
    lines.extend(render(line) for line in body)
    return "\n".join(lines)


def relative_error(measured: float, reference: float) -> float:
    """Relative error of *measured* against *reference* (0.0 when reference is 0)."""
    if reference == 0:
        return 0.0 if measured == 0 else float("inf")
    return (measured - reference) / reference


def comparison_rows(
    measured: Mapping[str, float],
    reference: Mapping[str, float],
    label: str = "quantity",
) -> List[Dict[str, object]]:
    """Side-by-side rows for every key present in *reference*."""
    rows: List[Dict[str, object]] = []
    for key, ref_value in reference.items():
        value = measured.get(key)
        row: Dict[str, object] = {label: key, "paper": ref_value}
        if value is None:
            row["measured"] = "n/a"
            row["error_pct"] = "n/a"
        else:
            row["measured"] = value
            row["error_pct"] = 100.0 * relative_error(value, ref_value)
        rows.append(row)
    return rows


def format_comparison(
    measured: Mapping[str, float],
    reference: Mapping[str, float],
    label: str = "quantity",
    precision: int = 3,
) -> str:
    """Convenience: comparison rows rendered as a table."""
    return format_table(comparison_rows(measured, reference, label), precision=precision)


def max_absolute_error_pct(
    measured: Mapping[str, float], reference: Mapping[str, float]
) -> float:
    """Largest |relative error| in percent over all keys of *reference*."""
    worst = 0.0
    for key, ref_value in reference.items():
        if key not in measured:
            continue
        worst = max(worst, abs(relative_error(measured[key], ref_value)) * 100.0)
    return worst


def rows_to_csv(rows: Iterable[Mapping[str, object]], columns: Optional[Sequence[str]] = None) -> str:
    """Render rows as CSV text (used by the examples to export results)."""
    rows = list(rows)
    if not rows:
        return ""
    if columns is None:
        columns = list(rows[0].keys())
    lines = [",".join(str(c) for c in columns)]
    for row in rows:
        lines.append(",".join(str(row.get(c, "")) for c in columns))
    return "\n".join(lines)
