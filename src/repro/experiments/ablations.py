"""Ablation studies on the design choices the paper calls out.

Three ablations beyond the published figures:

* **clock gating** (E-A1) — the paper's own proposed next step: "For clock
  gating we can use the configuration information of the router and switch
  off the unused lanes.  If clock gating is used, we expect that this offset
  will decrease."  We run the scenario sweep with and without lane-level
  clock gating and compare against the analytic estimate.
* **lane count / width** (E-A2) — Section 5.1: "The width and number of lanes
  are adjustable parameters in the design."  We sweep both and report the
  area, maximum frequency and per-lane bandwidth trade-off.
* **window-counter size** (E-A3) — Section 5.2's end-to-end flow control: the
  achievable throughput of a circuit saturates once the window covers the
  acknowledge round trip.
* **technology scaling** (extension) — both routers re-evaluated at 90 nm and
  65 nm with first-order constant-field scaling; the circuit-switched
  advantage is structural, not process-specific.
* **slot-table size** (E-A4, extension) — the Æthereal-style TDMA router's
  design knob: a larger table gives finer bandwidth granularity per slot but
  a longer revolution, i.e. a larger worst-case injection latency — the
  configuration-effort trade-off the paper raises against slot tables in
  Section 4.
"""

from __future__ import annotations

from typing import Dict, List

from repro.apps.traffic import SCENARIOS, BitFlipPattern
from repro.common import Port
from repro.core.clock_gating import estimate_gated_offset
from repro.core.flow_control import FlowControlConfig
from repro.core.lane import LaneLink
from repro.core.router import CircuitSwitchedRouter
from repro.core.testbench import LaneStreamConsumer, TileStreamDriver
from repro.apps.traffic import word_generator
from repro.energy.area import CircuitSwitchedRouterArea
from repro.energy.synthesis import synthesize_router
from repro.energy.technology import TSMC_130NM_LVHP, scale_technology
from repro.experiments.harness import DEFAULT_CYCLES, DEFAULT_FREQUENCY_HZ, run_circuit_scenario
from repro.sim.engine import SimulationKernel

__all__ = [
    "clock_gating_ablation",
    "lane_parameter_sweep",
    "window_counter_sweep",
    "technology_scaling_study",
    "gt_slot_table_sweep",
]


def clock_gating_ablation(
    cycles: int = DEFAULT_CYCLES,
    frequency_hz: float = DEFAULT_FREQUENCY_HZ,
    pattern: BitFlipPattern = BitFlipPattern.TYPICAL,
) -> List[dict]:
    """Scenario sweep of the circuit-switched router with and without clock gating."""
    rows: List[dict] = []
    for name, scenario in SCENARIOS.items():
        baseline = run_circuit_scenario(
            scenario, pattern, frequency_hz=frequency_hz, cycles=cycles, clock_gating=False
        )
        gated = run_circuit_scenario(
            scenario, pattern, frequency_hz=frequency_hz, cycles=cycles, clock_gating=True
        )
        analytic = estimate_gated_offset(active_lanes=scenario.concurrent_streams)
        rows.append(
            {
                "scenario": name,
                "active_streams": scenario.concurrent_streams,
                "total_uw_ungated": baseline.power.total_uw,
                "total_uw_gated": gated.power.total_uw,
                "dynamic_reduction_pct": 100.0
                * (1.0 - gated.power.dynamic_uw / baseline.power.dynamic_uw),
                "analytic_offset_uw_per_mhz_gated": analytic.offset_uw_per_mhz_gated,
                "analytic_offset_uw_per_mhz_ungated": analytic.offset_uw_per_mhz_ungated,
            }
        )
    return rows


def lane_parameter_sweep(
    lane_counts: tuple[int, ...] = (2, 4, 8),
    lane_widths: tuple[int, ...] = (2, 4, 8),
) -> List[dict]:
    """Area / frequency / bandwidth trade-off of the lane geometry (design-time knobs)."""
    rows: List[dict] = []
    for lanes in lane_counts:
        for width in lane_widths:
            result = synthesize_router(
                "circuit", lanes_per_port=lanes, lane_width=width, data_width=16
            )
            area = CircuitSwitchedRouterArea(lanes_per_port=lanes, lane_width=width)
            rows.append(
                {
                    "lanes_per_port": lanes,
                    "lane_width_bits": width,
                    "link_width_bits": lanes * width,
                    "total_area_mm2": result.total_area_mm2,
                    "max_frequency_mhz": result.max_frequency_mhz,
                    "config_memory_bits": area.config_memory_bits,
                    "lane_bandwidth_gbps_at_fmax": width * result.max_frequency_mhz * 1e6 / 1e9,
                    "concurrent_streams_per_link": lanes,
                }
            )
    return rows


def window_counter_sweep(
    window_sizes: tuple[int, ...] = (1, 2, 4, 8, 16),
    cycles: int = 2000,
    frequency_hz: float = DEFAULT_FREQUENCY_HZ,
) -> List[dict]:
    """Throughput of one circuit as a function of the window-counter size.

    A single stream (Tile → East) is offered at 100 % load; with a tiny window
    the source stalls waiting for acknowledges (each of which needs a full
    round trip through the registered crossbar), with a sufficiently large
    window the lane saturates at one word per five cycles.
    """
    rows: List[dict] = []
    for window in window_sizes:
        router = CircuitSwitchedRouter("dut")
        rx = LaneLink("rx_E")
        tx = LaneLink("tx_E")
        router.attach_link(Port.EAST, rx, tx)
        router.configure(Port.EAST, 0, Port.TILE, 0)
        flow = FlowControlConfig(window_size=window, credit_per_ack=1)
        router.tile.configure_tx(0, flow)

        kernel = SimulationKernel(frequency_hz)
        driver = TileStreamDriver(
            "src", router, 0, word_generator(BitFlipPattern.TYPICAL, seed=window), load=1.0
        )
        consumer = LaneStreamConsumer("dst", tx, 0, flow=flow)
        kernel.add_all([driver, consumer, router])
        kernel.run(cycles)

        ideal_words = cycles / 5.0
        rows.append(
            {
                "window_size": window,
                "words_delivered": consumer.words_received,
                "throughput_fraction_of_lane": consumer.words_received / ideal_words,
                "offered_words": driver.words_offered,
            }
        )
    return rows


def technology_scaling_study(
    nodes_nm: tuple[float, ...] = (130.0, 90.0, 65.0),
    cycles: int = 2000,
    frequency_hz: float = DEFAULT_FREQUENCY_HZ,
) -> List[dict]:
    """Extension study: both routers re-evaluated at scaled technology nodes.

    The paper's comparison is made in 0.13 µm; this study applies first-order
    constant-field scaling (:func:`repro.energy.technology.scale_technology`)
    and re-runs the Scenario IV power experiment at each node.  The point of
    interest is that the *relative* advantage of circuit switching is largely
    technology independent — it stems from the absence of buffers and
    arbitration, not from a particular process.
    """
    from repro.experiments.harness import run_circuit_scenario, run_packet_scenario

    rows: List[dict] = []
    for node in nodes_nm:
        tech = TSMC_130NM_LVHP if node == 130.0 else scale_technology(TSMC_130NM_LVHP, node)
        circuit = run_circuit_scenario(
            "IV", BitFlipPattern.TYPICAL, frequency_hz=frequency_hz, cycles=cycles, tech=tech
        )
        packet = run_packet_scenario(
            "IV", BitFlipPattern.TYPICAL, frequency_hz=frequency_hz, cycles=cycles, tech=tech
        )
        cs_synth = synthesize_router("circuit", tech)
        ps_synth = synthesize_router("packet", tech)
        rows.append(
            {
                "node_nm": node,
                "cs_area_mm2": cs_synth.total_area_mm2,
                "ps_area_mm2": ps_synth.total_area_mm2,
                "cs_fmax_mhz": cs_synth.max_frequency_mhz,
                "ps_fmax_mhz": ps_synth.max_frequency_mhz,
                "cs_power_uw": circuit.power.total_uw,
                "ps_power_uw": packet.power.total_uw,
                "power_ratio": packet.power.total_uw / circuit.power.total_uw,
                "area_ratio": ps_synth.total_area_mm2 / cs_synth.total_area_mm2,
            }
        )
    return rows


def gt_slot_table_sweep(
    slot_counts: tuple[int, ...] = (8, 16, 32, 64),
    cycles: int = 2000,
    frequency_hz: float = DEFAULT_FREQUENCY_HZ,
    data_width: int = 16,
) -> List[dict]:
    """Slot-table size trade-off of the Æthereal-style TDMA router (E-A4).

    Scenario IV is run with every stream owning a quarter of the revolving
    table, so link utilisation stays constant while the table grows.  A
    larger table refines the bandwidth granularity of one slot (total link
    bandwidth divided by the table size) but stretches the revolution, which
    bounds the worst-case wait for a connection's next slot — the structural
    reason the paper prefers lanes over time slots for its traffic mix.
    """
    from repro.experiments.harness import run_gt_scenario

    rows: List[dict] = []
    for slots in slot_counts:
        slots_per_stream = max(1, slots // 4)
        run = run_gt_scenario(
            "IV",
            BitFlipPattern.TYPICAL,
            frequency_hz=frequency_hz,
            cycles=cycles,
            slots=slots,
            slots_per_stream=slots_per_stream,
            data_width=data_width,
        )
        delivered_bits = sum(run.words_received.values()) * data_width
        duration_s = cycles / frequency_hz
        energy_pj_per_bit = (
            run.power.total_uw * duration_s * 1e6 / delivered_bits
            if delivered_bits
            else float("inf")
        )
        rows.append(
            {
                "slot_table_size": slots,
                "slots_per_stream": slots_per_stream,
                "slot_bandwidth_mbps": data_width * frequency_hz / slots / 1e6,
                "worst_case_wait_cycles": slots,
                "words_delivered": sum(run.words_received.values()),
                "total_uw": run.power.total_uw,
                "energy_pj_per_bit": energy_pj_per_bit,
            }
        )
    return rows
