"""Published values of the paper's tables and figures.

These constants are used by the benchmarks and EXPERIMENTS.md to put the
measured (reproduced) numbers next to the published ones.  Qualitative
claims — the statements of Section 7.3 that the experiments must reproduce in
*shape* — are captured as named expectations with tolerances.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

__all__ = [
    "TABLE1_PAPER_MBPS",
    "TABLE2_PAPER_MBPS",
    "TABLE4_PAPER",
    "FIGURE9_EXPECTATIONS",
    "FIGURE10_EXPECTATIONS",
    "PAPER_POWER_RATIO",
    "PAPER_AREA_RATIO",
]

#: Table 1 — HiperLAN/2 edge bandwidths in Mbit/s.
TABLE1_PAPER_MBPS: Dict[str, float] = {
    "sp_to_prefix_removal": 640.0,
    "prefix_removal_to_fft": 512.0,
    "fft_to_channel_eq": 416.0,
    "channel_eq_to_demap": 384.0,
    "hard_bits_bpsk": 12.0,
    "hard_bits_qam64": 72.0,
}

#: Table 2 — UMTS edge bandwidths in Mbit/s (spreading factor SF kept symbolic
#: in the paper; the values here are for the paper's example SF = 4).
TABLE2_PAPER_MBPS: Dict[str, float] = {
    "chips_per_finger": 61.44,
    "scrambling_code": 7.68,
    "mrc_coefficient_per_finger_sf4": 61.44 / 4,
    "received_bits_qpsk_sf4": 7.68 / 4,
    "received_bits_qam16_sf4": 15.36 / 4,
}

#: Paper's example total for 4 rake fingers at SF = 4 ("~320 Mbit/s").
TABLE2_PAPER_TOTAL_MBPS = 320.0

#: Table 4 — synthesis results of the three routers.
TABLE4_PAPER: Dict[str, Dict[str, float]] = {
    "circuit_switched": {
        "ports": 5,
        "data_width_bits": 16,
        "area_crossbar_mm2": 0.0258,
        "area_configuration_mm2": 0.0090,
        "area_data_converter_mm2": 0.0158,
        "total_area_mm2": 0.0506,
        "max_frequency_mhz": 1075.0,
        "link_bandwidth_gbps": 17.2,
    },
    "packet_switched": {
        "ports": 5,
        "data_width_bits": 16,
        "area_crossbar_mm2": 0.0706,
        "area_buffering_mm2": 0.1034,
        "area_arbitration_mm2": 0.0022,
        "area_misc_mm2": 0.0038,
        "total_area_mm2": 0.1800,
        "max_frequency_mhz": 507.0,
        "link_bandwidth_gbps": 8.1,
    },
    "aethereal": {
        "ports": 6,
        "data_width_bits": 32,
        "total_area_mm2": 0.1750,
        "max_frequency_mhz": 500.0,
        "link_bandwidth_gbps": 16.0,
    },
}

#: Headline area/power advantage of the circuit-switched router (Section 7.3,
#: abstract: "3.5 times less energy compared to its packet-switched equivalent").
PAPER_AREA_RATIO = 3.5
PAPER_POWER_RATIO = 3.5


@dataclass(frozen=True)
class Expectation:
    """A qualitative claim of the paper with the tolerance we reproduce it to."""

    name: str
    description: str
    lower: float
    upper: float

    def check(self, value: float) -> bool:
        """True when the measured value satisfies the expectation."""
        return self.lower <= value <= self.upper


#: Figure 9 expectations (power per scenario at 25 MHz, random data, 100 % load).
FIGURE9_EXPECTATIONS: Dict[str, Expectation] = {
    "power_ratio": Expectation(
        "power_ratio",
        "packet-switched total power / circuit-switched total power (≈3.5×)",
        2.5,
        4.5,
    ),
    "static_fraction_circuit": Expectation(
        "static_fraction_circuit",
        "static power is a small fraction of the circuit-switched total",
        0.0,
        0.15,
    ),
    "static_fraction_packet": Expectation(
        "static_fraction_packet",
        "static power is a small fraction of the packet-switched total",
        0.0,
        0.15,
    ),
    "offset_fraction": Expectation(
        "offset_fraction",
        "the data-independent offset dominates the dynamic power "
        "(scenario I dynamic / scenario IV dynamic)",
        0.6,
        1.0,
    ),
}

#: Figure 10 expectations (dynamic power vs. bit flips).
FIGURE10_EXPECTATIONS: Dict[str, Expectation] = {
    "flip_sensitivity_circuit": Expectation(
        "flip_sensitivity_circuit",
        "bit flips have only a minor influence: dynamic power at 100 % flips / 0 % flips "
        "for the circuit-switched router in scenario IV",
        1.0,
        1.5,
    ),
    "flip_sensitivity_packet": Expectation(
        "flip_sensitivity_packet",
        "bit flips have only a minor influence for the packet-switched router too",
        1.0,
        1.5,
    ),
    "stream_count_dominates": Expectation(
        "stream_count_dominates",
        "adding streams (scenario I → IV at 50 % flips) changes dynamic power at least as "
        "much as adding bit flips (0 % → 100 % in scenario IV), expressed as a ratio of deltas",
        1.0,
        1e9,
    ),
    "collision_penalty": Expectation(
        "collision_penalty",
        "the packet-switched router pays an extra arbitration/control penalty when streams 1 "
        "and 3 collide on output East (scenario IV extra power per added stream vs scenario III)",
        1.0,
        1e9,
    ),
}
