"""A reusable scenario farm: fan independent tasks over a process pool.

Several harnesses run grids of *independent* simulations — the topology
benchmark sweeps (topology × application) pairs, the storm campaign sweeps
(kind × storm size × topology) cells — and each previously grew its own
``multiprocessing`` plumbing or ran serially.  This module holds the one
pattern they share:

* tasks are plain picklable specs, the task function is module-level,
* results come back **in task order** (``Pool.map``), so aggregation is
  bit-identical to the serial run regardless of completion order,
* ``jobs <= 1`` short-circuits to a plain in-process loop — no pool, no
  pickling, no fork — which keeps single-job runs debuggable and makes the
  parallel path a pure opt-in.

This is the coarse-grained counterpart of :mod:`repro.sim.shard`: the farm
parallelises *across* independent simulations, the sharded kernel
parallelises *within* one.
"""

from __future__ import annotations

import multiprocessing
from typing import Callable, List, Sequence, TypeVar

__all__ = ["run_tasks"]

Task = TypeVar("Task")
Result = TypeVar("Result")


def run_tasks(
    task_fn: Callable[[Task], Result],
    tasks: Sequence[Task],
    jobs: int = 1,
) -> List[Result]:
    """Run ``task_fn`` over *tasks*, optionally on a process pool.

    *task_fn* must be module-level and *tasks* picklable when ``jobs > 1``
    (the usual ``multiprocessing`` contract).  Results are returned in task
    order either way, so callers can aggregate without caring which path
    executed.  The pool is sized ``min(jobs, len(tasks))`` — never idle
    workers, never a pool for an empty grid.
    """
    tasks = list(tasks)
    if jobs <= 1 or len(tasks) <= 1:
        return [task_fn(task) for task in tasks]
    with multiprocessing.Pool(processes=min(jobs, len(tasks))) as pool:
        return pool.map(task_fn, tasks)
