"""Dynamic multi-application workloads: CCN-driven churn on live networks.

The CCN exists because applications of a multi-mode terminal *come and go at
run time* (Section 1: "the CCN performs the feasibility analysis, spatial
mapping, process allocation and configuration … before the start of an
application").  The static experiments admit one application and run it to
completion; this module drives the full lifecycle instead: a deterministic
schedule of arrival/departure events (UMTS + HiperLAN/2 + DRM churn) is
replayed against a *live* network of any registered kind, with the
:class:`~repro.noc.ccn.CentralCoordinationNode` admitting, programming,
attaching, and transactionally releasing every application mid-simulation.

Per epoch (the interval between consecutive event times) the engine reports
delivered words, energy per delivered payload bit, link utilization, tile
occupancy, the accumulated reconfiguration time and the admissions the CCN
had to reject — the quantities on which the three fabrics differ under churn
(Section 4: cheap 10-bit lane commands vs. aligned slot-table writes vs. no
configuration at all but higher per-bit energy).

Provenance note: delivered words, switching activity and thus energy/bit are
*simulated*; the reconfiguration times are the *analytic* best-effort-network
transport model of :mod:`repro.noc.be_network` applied to the simulated
allocations' command counts (the paper's "<1 ms over the BE network" budget),
not a cycle-accurate BE simulation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.apps import drm, hiperlan2, umts
from repro.apps.kpn import ProcessGraph
from repro.apps.traffic import BitFlipPattern, word_generator
from repro.common import AllocationError, MappingError, ReproError
from repro.noc.ccn import CentralCoordinationNode
from repro.noc.fabric import build_network
from repro.noc.faults import FaultInjector, FaultSpec
from repro.noc.selection import FabricSelector
from repro.noc.topology import Mesh2D, Topology

__all__ = [
    "WorkloadEvent",
    "EpochReport",
    "DynamicWorkloadResult",
    "paper_churn_events",
    "run_dynamic_workload",
]


@dataclass(frozen=True)
class WorkloadEvent:
    """One application arriving/departing — or a resource dying mid-run."""

    cycle: int
    action: str  # "arrive" | "depart" | "fault"
    application: str = ""
    graph_factory: Optional[Callable[[], ProcessGraph]] = None
    #: For ``action="fault"``: what to kill (see :class:`repro.noc.faults`).
    fault: Optional[FaultSpec] = None

    def __post_init__(self) -> None:
        if self.cycle < 0:
            raise ValueError("event cycle must be non-negative")
        if self.action not in ("arrive", "depart", "fault"):
            raise ValueError(f"unknown workload action {self.action!r}")
        if self.action == "arrive" and self.graph_factory is None:
            raise ValueError("arrival events need a graph_factory")
        if self.action == "fault" and self.fault is None:
            raise ValueError("fault events need a FaultSpec")
        if self.action != "fault" and self.fault is not None:
            raise ValueError("only fault events carry a FaultSpec")
        if self.action in ("arrive", "depart") and not self.application:
            raise ValueError("arrive/depart events need an application label")


@dataclass
class EpochReport:
    """Observables of one inter-event interval of the simulation."""

    start_cycle: int
    end_cycle: int
    #: Human-readable event descriptions applied at *start_cycle*.
    events: List[str] = field(default_factory=list)
    #: Applications admitted during this epoch (after the events applied).
    admitted: List[str] = field(default_factory=list)
    words_delivered: int = 0
    energy_pj: float = 0.0
    energy_pj_per_bit: float = float("inf")
    link_utilization: float = 0.0
    tile_occupancy: float = 0.0
    #: BE-network transport time of the configuration shipped at this epoch's
    #: start (arrivals admitted at *start_cycle*).
    reconfiguration_time_s: float = 0.0
    rejections: int = 0
    #: One-line descriptions of the faults injected at this epoch's start.
    faults: List[str] = field(default_factory=list)
    #: Applications displaced by this epoch's faults…
    displaced: List[str] = field(default_factory=list)
    #: …of which these were re-admitted on the degraded fabric…
    readmitted: List[str] = field(default_factory=list)
    #: …and these could no longer be carried and were cleanly rejected.
    displaced_rejected: List[str] = field(default_factory=list)
    #: Network cycles the fault-recovery drains of this epoch consumed.
    recovery_cycles: int = 0
    #: Wire-level units (phits/flits/words) lost to dead links this epoch.
    words_dropped: int = 0

    @property
    def cycles(self) -> int:
        """Length of the epoch in network cycles."""
        return self.end_cycle - self.start_cycle


@dataclass
class DynamicWorkloadResult:
    """Outcome of one churn schedule on one network kind."""

    kind: str
    frequency_hz: float
    total_cycles: int
    load: float
    data_width: int = 16
    epochs: List[EpochReport] = field(default_factory=list)
    rejected: List[str] = field(default_factory=list)
    #: Per-arrival fabric recommendation (application -> chosen kind) when a
    #: :class:`~repro.noc.selection.FabricSelector` was consulted.
    fabric_choices: Dict[str, Optional[str]] = field(default_factory=dict)
    #: What one dropped wire unit is for this network kind (phit/flit/word).
    drop_unit: str = "word"
    #: Post-fault fabric recommendation per displaced-and-rejected
    #: application, when a selector was available during recovery.
    fallback_kinds: Dict[str, Optional[str]] = field(default_factory=dict)
    #: CCN leak check evaluated after the final epoch (``None`` until run).
    end_leak_free: Optional[bool] = None

    @property
    def words_delivered(self) -> int:
        """Payload words delivered across the whole schedule."""
        return sum(e.words_delivered for e in self.epochs)

    @property
    def energy_pj_per_bit(self) -> float:
        """Network energy per delivered payload bit over the whole schedule."""
        energy = sum(e.energy_pj for e in self.epochs)
        bits = self.words_delivered * self.data_width
        return energy / bits if bits else float("inf")

    @property
    def reconfiguration_time_s(self) -> float:
        """Total BE-network configuration transport time of all admissions."""
        return sum(e.reconfiguration_time_s for e in self.epochs)

    @property
    def rejections(self) -> int:
        """Arrivals the CCN had to turn away."""
        return sum(e.rejections for e in self.epochs)

    @property
    def peak_tile_occupancy(self) -> float:
        """Highest tile occupancy any epoch reached."""
        return max((e.tile_occupancy for e in self.epochs), default=0.0)

    @property
    def fault_count(self) -> int:
        """Faults injected across the whole schedule."""
        return sum(len(e.faults) for e in self.epochs)

    @property
    def displaced(self) -> List[str]:
        """Applications displaced by faults, in injection order."""
        return [name for e in self.epochs for name in e.displaced]

    @property
    def readmitted(self) -> List[str]:
        """Displaced applications re-admitted on the degraded fabric."""
        return [name for e in self.epochs for name in e.readmitted]

    @property
    def displaced_rejected(self) -> List[str]:
        """Displaced applications the degraded fabric could not re-admit."""
        return [name for e in self.epochs for name in e.displaced_rejected]

    @property
    def recovery_cycles(self) -> int:
        """Network cycles all fault-recovery sequences consumed."""
        return sum(e.recovery_cycles for e in self.epochs)

    @property
    def words_dropped(self) -> int:
        """Wire-level units lost to dead links over the whole schedule."""
        return sum(e.words_dropped for e in self.epochs)


def paper_churn_events() -> List[WorkloadEvent]:
    """The reference churn schedule: UMTS + HiperLAN/2 + DRM on one terminal.

    Deterministic and deliberately over-subscribed once: the HiperLAN/2
    re-arrival at cycle 1700 finds UMTS and DRM holding 17 of the 25 tiles
    and no DSP/DSRH/FPGA slack left for its filters, so the CCN rejects it;
    after UMTS departs, the retry at cycle 2300 succeeds.  Designed for the
    default 5×5 grid.
    """
    return [
        WorkloadEvent(0, "arrive", "hiperlan2", hiperlan2.build_process_graph),
        WorkloadEvent(500, "arrive", "umts", umts.build_process_graph),
        WorkloadEvent(1100, "depart", "hiperlan2"),
        WorkloadEvent(1400, "arrive", "drm", drm.build_process_graph),
        WorkloadEvent(1700, "arrive", "hiperlan2", hiperlan2.build_process_graph),
        WorkloadEvent(2000, "depart", "umts"),
        WorkloadEvent(2300, "arrive", "hiperlan2", hiperlan2.build_process_graph),
    ]


def _total_energy_pj(network) -> float:
    """Cumulative network energy since construction (router power × time)."""
    duration_s = network.kernel.cycle / network.frequency_hz
    if duration_s == 0.0:
        return 0.0
    return network.total_power().total_uw * duration_s * 1e6


def run_dynamic_workload(
    kind: str,
    topology: Optional[Topology] = None,
    events: Optional[Sequence[WorkloadEvent]] = None,
    frequency_hz: float = 100e6,
    total_cycles: int = 3000,
    load: float = 0.5,
    seed: int = 0,
    schedule: str = "auto",
    selector: Optional[FabricSelector] = None,
    **params,
) -> DynamicWorkloadResult:
    """Replay a churn schedule against a live network of *kind*.

    Events are applied in cycle order; between events the network simulates
    normally.  Arrivals run the full CCN pipeline (admit + program + attach
    traffic); infeasible arrivals are counted as rejections and skipped.
    Departures detach the application's streams and release every resource.

    With a *selector* every arrival is first scored across the candidate
    fabrics and the recommendation recorded in
    :attr:`DynamicWorkloadResult.fabric_choices` (the engine still runs on
    *kind* — the selection is the resource manager's advisory view).  The
    selector's probe cache makes repeat arrivals of the same application
    effectively free, which is what makes per-arrival selection viable.
    """
    topology = topology if topology is not None else Mesh2D(5, 5)
    events = list(events) if events is not None else paper_churn_events()
    events.sort(key=lambda e: e.cycle)
    if events and events[-1].cycle >= total_cycles:
        raise ReproError("every event must happen before total_cycles")

    network = build_network(
        kind, topology, frequency_hz=frequency_hz, schedule=schedule, **params
    )
    ccn = CentralCoordinationNode(network=network)
    generator = word_generator(BitFlipPattern.TYPICAL, seed=seed)

    result = DynamicWorkloadResult(
        kind=network.kind,
        frequency_hz=frequency_hz,
        total_cycles=total_cycles,
        load=load,
        data_width=network.data_width,
        drop_unit=network.fault_drop_unit,
    )
    #: Lazily constructed on the first fault event.
    injector: Optional[FaultInjector] = None
    #: Labels whose application was displaced-and-rejected by a fault; their
    #: scheduled departure events become tolerated no-ops.
    vanished: set = set()
    #: graph.name of every application label currently admitted.
    live: Dict[str, str] = {}
    #: Delivered-word baseline per live stream, recorded at attach time (the
    #: packet fabric counts deliveries per tile pair, so a re-admitted
    #: application must not re-count an earlier admission's words).  Caveat:
    #: two *concurrently* live packet streams sharing one (src, dst) tile
    #: pair would still each report the combined pair count — none of the
    #: shipped application graphs map two GT channels onto the same pair.
    baselines: Dict[str, int] = {}
    #: Words delivered by already-detached streams (finalised at departure).
    finalized_words = 0
    prev_words = 0
    prev_energy = 0.0
    prev_drops = 0

    # Group events by cycle so one epoch boundary applies all of them.
    boundaries: List[int] = sorted({e.cycle for e in events})
    if not boundaries or boundaries[0] != 0:
        boundaries.insert(0, 0)

    def delivered_words() -> int:
        stats = network.stream_statistics()
        return finalized_words + sum(
            stats[name]["received"] - baseline for name, baseline in baselines.items()
        )

    for index, start in enumerate(boundaries):
        end = boundaries[index + 1] if index + 1 < len(boundaries) else total_cycles
        epoch = EpochReport(start_cycle=start, end_cycle=end)

        for event in (e for e in events if e.cycle == start):
            if event.action == "arrive":
                graph = event.graph_factory()
                if selector is not None:
                    decision = selector.select(graph)
                    result.fabric_choices[event.application] = decision.chosen_kind
                    epoch.events.append(
                        f"select {decision.chosen_kind} for {event.application}"
                    )
                try:
                    admission = ccn.admit(graph)
                    ccn.attach_traffic(graph.name, generator, load=load)
                except (MappingError, AllocationError) as error:
                    epoch.rejections += 1
                    result.rejected.append(event.application)
                    epoch.events.append(
                        f"reject {event.application} ({type(error).__name__})"
                    )
                else:
                    live[event.application] = graph.name
                    stats = network.stream_statistics()
                    for name in admission.stream_names:
                        baselines[name] = stats[name]["received"]
                    epoch.reconfiguration_time_s += admission.reconfiguration_time_s
                    epoch.events.append(f"arrive {event.application}")
            elif event.action == "depart":
                try:
                    graph_name = live.pop(event.application)
                except KeyError:
                    if event.application in vanished:
                        # The application was displaced by a fault and could
                        # not be re-admitted; its scheduled departure finds
                        # nothing to release — by design, not by accident.
                        vanished.discard(event.application)
                        epoch.events.append(
                            f"depart {event.application} (already displaced)"
                        )
                        continue
                    raise ReproError(
                        f"departure of {event.application!r} without a live admission"
                    ) from None
                # release() halts, drains and detaches; its return value is
                # the post-drain count, so words delivered while draining are
                # credited rather than lost with the detached streams.
                final_counts = ccn.release(graph_name)
                for name, count in final_counts.items():
                    finalized_words += count - baselines.pop(name)
                epoch.events.append(f"depart {event.application}")
            else:  # fault
                if injector is None:
                    injector = FaultInjector(network, ccn=ccn, selector=selector)
                report = injector.inject(event.fault)
                epoch.faults.append(report.describe())
                epoch.events.append(report.describe())
                recovery = report.recovery
                if recovery is not None:
                    epoch.recovery_cycles += recovery.recovery_cycles
                    epoch.reconfiguration_time_s += recovery.reconfiguration_time_s
                    epoch.displaced.extend(recovery.displaced)
                    epoch.readmitted.extend(recovery.readmitted)
                    epoch.displaced_rejected.extend(recovery.rejected)
                    result.fallback_kinds.update(recovery.fallback_kinds)
                    # Every displaced stream was detached post-drain; credit
                    # its words like a departure would.  Re-admitted
                    # applications got fresh streams — re-baseline them.
                    for name, count in recovery.final_stream_counts.items():
                        if name in baselines:
                            finalized_words += count - baselines.pop(name)
                    stats = network.stream_statistics()
                    for app_name in recovery.readmitted:
                        for name in ccn.admission(app_name).stream_names:
                            baselines[name] = stats[name]["received"]
                    for app_name in recovery.rejected:
                        for label, graph_name in list(live.items()):
                            if graph_name == app_name:
                                live.pop(label)
                                vanished.add(label)

        # A departure's drain phase may already have run past the epoch
        # boundary; later epochs re-synchronise at their own end cycles.
        network.run(max(0, end - network.kernel.cycle))

        words = delivered_words()
        energy = _total_energy_pj(network)
        epoch.admitted = ccn.admitted_applications
        epoch.words_delivered = words - prev_words
        epoch.energy_pj = energy - prev_energy
        bits = epoch.words_delivered * network.data_width
        epoch.energy_pj_per_bit = epoch.energy_pj / bits if bits else float("inf")
        epoch.link_utilization = (
            ccn.allocator.link_utilization() if ccn.allocator is not None else 0.0
        )
        epoch.tile_occupancy = ccn.grid.occupancy()
        drops = network.fault_drops()
        epoch.words_dropped = drops - prev_drops
        prev_words, prev_energy, prev_drops = words, energy, drops
        result.epochs.append(epoch)

    result.end_leak_free = ccn.leak_free(network)
    return result
