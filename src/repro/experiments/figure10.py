"""Experiment E-F10: regenerate Figure 10.

Figure 10 plots the dynamic power per MHz of both routers and all four
scenarios against the percentage of data bit flips (0 %, 50 %, 100 %) at
100 % load.  The paper's conclusions from it (Section 7.3):

* bit flips have only a *minor* influence on the dynamic power,
* the number of concurrent data streams matters more,
* the packet-switched router pays an extra penalty when two streams collide
  on the same output port (time multiplexing causes additional switching in
  the arbitration/crossbar control), visible as a non-linearity — the paper
  labels it Scenario III, but streams 1 and 3 only coexist in Scenario IV
  (see DESIGN.md §5); we evaluate it for Scenario IV.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.apps.traffic import SCENARIOS, BitFlipPattern
from repro.experiments.harness import DEFAULT_CYCLES, DEFAULT_FREQUENCY_HZ, run_scenario
from repro.experiments.paper_data import FIGURE10_EXPECTATIONS
from repro.experiments.report import format_table

__all__ = ["Figure10Data", "reproduce_figure10", "format_report"]

#: The x-axis of Figure 10.
FLIP_PERCENTAGES: Tuple[int, ...] = (0, 50, 100)


@dataclass
class Figure10Data:
    """All series of Figure 10 plus derived qualitative checks."""

    #: ``series[(router, scenario)][flip_percentage] = dynamic µW/MHz``
    series: Dict[Tuple[str, str], Dict[int, float]]
    checks: Dict[str, bool]

    def rows(self) -> List[dict]:
        """Flat rows for table rendering."""
        rows: List[dict] = []
        for (router, scenario), values in sorted(self.series.items()):
            row: dict = {"router": router, "scenario": scenario}
            for flip in FLIP_PERCENTAGES:
                row[f"dyn_uw_per_mhz_{flip}pct"] = values[flip]
            rows.append(row)
        return rows


def reproduce_figure10(
    frequency_hz: float = DEFAULT_FREQUENCY_HZ,
    cycles: int = DEFAULT_CYCLES,
    load: float = 1.0,
) -> Figure10Data:
    """Run all router × scenario × flip-rate combinations of Figure 10."""
    series: Dict[Tuple[str, str], Dict[int, float]] = {}
    for kind, router_name in (("circuit", "circuit_switched"), ("packet", "packet_switched")):
        for scenario_name in SCENARIOS:
            values: Dict[int, float] = {}
            for flip in FLIP_PERCENTAGES:
                pattern = BitFlipPattern.from_flip_percentage(flip)
                run = run_scenario(
                    kind,
                    scenario_name,
                    pattern=pattern,
                    load=load,
                    frequency_hz=frequency_hz,
                    cycles=cycles,
                )
                values[flip] = run.power.dynamic_uw_per_mhz
            series[(router_name, scenario_name)] = values

    def flip_sensitivity(router: str) -> float:
        values = series[(router, "IV")]
        return values[100] / values[0] if values[0] > 0 else float("inf")

    def stream_count_vs_flips(router: str) -> float:
        added_streams = series[(router, "IV")][50] - series[(router, "I")][50]
        added_flips = series[(router, "IV")][100] - series[(router, "IV")][0]
        if added_flips <= 0:
            return float("inf")
        return added_streams / added_flips

    def collision_penalty() -> float:
        """Extra cost of the third stream (collides on East) vs. the second
        stream (no collision) for the packet-switched router at 50 % flips."""
        ps = "packet_switched"
        second = series[(ps, "III")][50] - series[(ps, "II")][50]
        third = series[(ps, "IV")][50] - series[(ps, "III")][50]
        if second <= 0:
            return float("inf")
        return third / second

    checks = {
        "flip_sensitivity_circuit": FIGURE10_EXPECTATIONS["flip_sensitivity_circuit"].check(
            flip_sensitivity("circuit_switched")
        ),
        "flip_sensitivity_packet": FIGURE10_EXPECTATIONS["flip_sensitivity_packet"].check(
            flip_sensitivity("packet_switched")
        ),
        "stream_count_dominates": FIGURE10_EXPECTATIONS["stream_count_dominates"].check(
            min(stream_count_vs_flips("circuit_switched"), stream_count_vs_flips("packet_switched"))
        ),
        "collision_penalty": FIGURE10_EXPECTATIONS["collision_penalty"].check(collision_penalty()),
    }
    return Figure10Data(series=series, checks=checks)


def format_report(data: Figure10Data | None = None) -> str:
    """Human-readable Figure 10 report."""
    if data is None:
        data = reproduce_figure10()
    lines = [
        "Figure 10 - Data dependency of the dynamic power consumption (100 % load)",
        "",
        format_table(data.rows(), precision=2),
        "",
        "Qualitative checks (Section 7.3):",
    ]
    for name, passed in data.checks.items():
        lines.append(f"  {name}: {'PASS' if passed else 'FAIL'}")
    return "\n".join(lines)
