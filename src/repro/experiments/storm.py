"""Failure-storm campaigns: seeded fault schedules and survivability telemetry.

A *storm* is a deterministic churn schedule with faults embedded in it: the
multi-application workload arrives as usual, and then — mid-traffic — a
seeded sequence of links and routers dies, one fault per epoch boundary.
Every fault runs the full recovery pipeline of :mod:`repro.noc.faults`
(wire kill → degraded topology → routing rebuild → CCN displacement,
release, re-mapping and re-admission), so the campaign measures what the
paper's run-time reconfiguration story costs when the reconfiguration is
*forced* rather than requested: recovery cycles, words lost on the wires,
energy per bit before and after the storm, and whether every displaced
application found a new home on the surviving fabric.

The module provides

* :func:`storm_schedule` — a seeded arrival/fault/departure event list
  (link faults target the busiest allocated link, so a storm always hits
  somebody; router faults are seeded-random among the killable routers),
* :func:`run_storm` — one campaign on one network kind, returning a
  :class:`StormOutcome` wrapping the
  :class:`~repro.experiments.dynamic.DynamicWorkloadResult` with the
  survivability invariants as properties,
* :func:`telemetry_columns` — the per-epoch observables as compact columnar
  arrays (one list per quantity, JSON-ready) for plotting and regression
  baselines,
* :func:`sweep_storms` — the storm size × kind × topology campaign grid.

Determinism: every victim chooser owns its own seeded RNG and faults are
injected between cycles, so a campaign replayed under ``schedule="strict"``
and ``schedule="auto"`` is bit-identical — checked by ``identical_results``
in ``examples/failure_storm.py`` and CI.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.apps import drm, hiperlan2, umts
from repro.apps.kpn import ProcessGraph
from repro.experiments.dynamic import (
    DynamicWorkloadResult,
    WorkloadEvent,
    run_dynamic_workload,
)
from repro.noc.faults import (
    FaultSpec,
    loaded_link_chooser,
    random_router_chooser,
    region_chooser,
    row_cut_chooser,
)
from repro.noc.topology import Mesh2D, Topology

__all__ = [
    "DEFAULT_STORM_APPS",
    "StormOutcome",
    "storm_schedule",
    "run_storm",
    "telemetry_columns",
    "sweep_storms",
]

AppSpec = Tuple[str, Callable[[], ProcessGraph]]

#: The multi-mode terminal's three applications, in arrival order.
DEFAULT_STORM_APPS: List[AppSpec] = [
    ("hiperlan2", hiperlan2.build_process_graph),
    ("umts", umts.build_process_graph),
    ("drm", drm.build_process_graph),
]

#: Per-epoch observables exported by :func:`telemetry_columns`.
TELEMETRY_COLUMNS = (
    "start_cycle",
    "end_cycle",
    "words_delivered",
    "energy_pj",
    "energy_pj_per_bit",
    "link_utilization",
    "tile_occupancy",
    "reconfiguration_time_s",
    "rejections",
    "faults",
    "displaced",
    "readmitted",
    "displaced_rejected",
    "recovery_cycles",
    "words_dropped",
)


@dataclass
class StormOutcome:
    """One storm campaign on one fabric, with its survivability verdicts."""

    kind: str
    topology_name: str
    storm_size: int
    seed: int
    schedule: str
    result: DynamicWorkloadResult

    @property
    def recovered_or_rejected(self) -> bool:
        """True when every displaced application was re-admitted or cleanly
        rejected — nobody silently lost."""
        accounted = set(self.result.readmitted) | set(self.result.displaced_rejected)
        return all(name in accounted for name in self.result.displaced)

    @property
    def leak_free(self) -> bool:
        """True when the CCN held no resources after the final departure."""
        return bool(self.result.end_leak_free)

    @property
    def telemetry(self) -> Dict[str, List]:
        """The campaign's per-epoch observables, columnar."""
        return telemetry_columns(self.result)


def storm_schedule(
    storm_size: int,
    seed: int = 0,
    apps: Optional[Sequence[AppSpec]] = None,
    arrival_spacing: int = 300,
    fault_start: Optional[int] = None,
    fault_spacing: int = 250,
    router_fault_every: int = 3,
    row_cut_every: int = 0,
    region_every: int = 0,
    region_extent: Tuple[int, int] = (2, 2),
    cooldown: int = 300,
) -> Tuple[List[WorkloadEvent], int]:
    """A seeded storm: arrivals, *storm_size* faults mid-traffic, departures.

    Returns ``(events, total_cycles)``.  Link faults use
    :func:`~repro.noc.faults.loaded_link_chooser` (the busiest allocated
    link — a storm that misses all traffic measures nothing); every
    *router_fault_every*-th fault kills a whole router via
    :func:`~repro.noc.faults.random_router_chooser` instead.  Correlated
    faults are opt-in: with ``row_cut_every=N`` every N-th fault severs a
    whole mesh row's horizontal links atomically
    (:func:`~repro.noc.faults.row_cut_chooser`), and with
    ``region_every=N`` every N-th fault browns out a
    *region_extent*-sized power domain of routers
    (:func:`~repro.noc.faults.region_chooser`); row cuts take precedence
    when both land on the same index.  Each fault gets its own chooser
    seeded from *seed* and the fault index, so the victim sequence is a
    pure function of the schedule parameters.
    """
    if storm_size < 1:
        raise ValueError("storm_size must be positive")
    apps = list(apps) if apps is not None else list(DEFAULT_STORM_APPS)
    events: List[WorkloadEvent] = []
    for index, (label, factory) in enumerate(apps):
        events.append(WorkloadEvent(index * arrival_spacing, "arrive", label, factory))
    if fault_start is None:
        fault_start = len(apps) * arrival_spacing + arrival_spacing
    for index in range(storm_size):
        cycle = fault_start + index * fault_spacing
        if row_cut_every and (index + 1) % row_cut_every == 0:
            spec = FaultSpec("link", chooser=row_cut_chooser(seed + index))
        elif region_every and (index + 1) % region_every == 0:
            width, height = region_extent
            spec = FaultSpec(
                "router",
                chooser=region_chooser(seed + index, width=width, height=height),
            )
        elif router_fault_every and (index + 1) % router_fault_every == 0:
            spec = FaultSpec("router", chooser=random_router_chooser(seed + index))
        else:
            spec = FaultSpec("link", chooser=loaded_link_chooser(seed + index))
        events.append(WorkloadEvent(cycle, "fault", fault=spec))
    depart_start = fault_start + storm_size * fault_spacing + cooldown
    for index, (label, _) in enumerate(apps):
        events.append(WorkloadEvent(depart_start + index * 150, "depart", label))
    total_cycles = depart_start + len(apps) * 150 + cooldown
    return events, total_cycles


def run_storm(
    kind: str,
    topology: Optional[Topology] = None,
    storm_size: int = 2,
    seed: int = 0,
    schedule: str = "auto",
    frequency_hz: float = 100e6,
    load: float = 0.5,
    apps: Optional[Sequence[AppSpec]] = None,
    **schedule_params,
) -> StormOutcome:
    """Run one seeded storm campaign against a live network of *kind*."""
    topology = topology if topology is not None else Mesh2D(8, 8)
    events, total_cycles = storm_schedule(
        storm_size, seed=seed, apps=apps, **schedule_params
    )
    result = run_dynamic_workload(
        kind,
        topology=topology,
        events=events,
        frequency_hz=frequency_hz,
        total_cycles=total_cycles,
        load=load,
        seed=seed,
        schedule=schedule,
    )
    return StormOutcome(
        kind=result.kind,
        topology_name=type(topology).__name__,
        storm_size=storm_size,
        seed=seed,
        schedule=schedule,
        result=result,
    )


def telemetry_columns(result: DynamicWorkloadResult) -> Dict[str, List]:
    """Per-epoch survivability observables as columnar arrays.

    One list per :data:`TELEMETRY_COLUMNS` entry, all of equal length (one
    entry per epoch).  Application lists become counts and ``inf`` energy
    (an epoch that delivered nothing) becomes ``None``, so the structure
    round-trips through JSON unchanged.
    """
    columns: Dict[str, List] = {name: [] for name in TELEMETRY_COLUMNS}
    for epoch in result.epochs:
        columns["start_cycle"].append(epoch.start_cycle)
        columns["end_cycle"].append(epoch.end_cycle)
        columns["words_delivered"].append(epoch.words_delivered)
        columns["energy_pj"].append(epoch.energy_pj)
        columns["energy_pj_per_bit"].append(
            None
            if epoch.energy_pj_per_bit == float("inf")
            else epoch.energy_pj_per_bit
        )
        columns["link_utilization"].append(epoch.link_utilization)
        columns["tile_occupancy"].append(epoch.tile_occupancy)
        columns["reconfiguration_time_s"].append(epoch.reconfiguration_time_s)
        columns["rejections"].append(epoch.rejections)
        columns["faults"].append(len(epoch.faults))
        columns["displaced"].append(len(epoch.displaced))
        columns["readmitted"].append(len(epoch.readmitted))
        columns["displaced_rejected"].append(len(epoch.displaced_rejected))
        columns["recovery_cycles"].append(epoch.recovery_cycles)
        columns["words_dropped"].append(epoch.words_dropped)
    return columns


def _storm_task(task: Tuple[str, Topology, int, int, Dict]) -> StormOutcome:
    """One campaign cell, module-level so it can cross a process boundary."""
    kind, topology, storm_size, seed, storm_params = task
    return run_storm(
        kind, topology=topology, storm_size=storm_size, seed=seed, **storm_params
    )


def sweep_storms(
    kinds: Sequence[str] = ("circuit", "packet", "gt"),
    storm_sizes: Sequence[int] = (1, 2),
    topologies: Optional[Sequence[Topology]] = None,
    seed: int = 0,
    jobs: int = 1,
    **storm_params,
) -> List[StormOutcome]:
    """The campaign grid: every kind × storm size × topology, one seed.

    ``jobs > 1`` fans the independent cells over the scenario farm
    (:func:`repro.experiments.farm.run_tasks`); results come back in task
    order, so the outcome list is bit-identical to the serial run.
    """
    from repro.experiments.farm import run_tasks

    topologies = list(topologies) if topologies is not None else [Mesh2D(8, 8)]
    tasks = [
        (kind, topology, storm_size, seed, storm_params)
        for topology in topologies
        for kind in kinds
        for storm_size in storm_sizes
    ]
    return run_tasks(_storm_task, tasks, jobs=jobs)
