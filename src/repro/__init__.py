"""repro — reproduction of "An Energy-Efficient Reconfigurable Circuit-Switched
Network-on-Chip" (Wolkotte, Smit, Rauwerda, Smit; 2005).

The library provides, in pure Python:

* :mod:`repro.core` — the paper's reconfigurable circuit-switched router
  (lane-division multiplexing, 16×20 crossbar with registered output lanes,
  100-bit configuration memory, tile-side data converter, window-counter
  flow control, optional clock gating),
* :mod:`repro.baseline` — the packet-switched virtual-channel baseline router
  it is compared against, plus the Æthereal literature reference,
* :mod:`repro.energy` — 0.13 µm area / timing / power models calibrated to the
  paper's Table 4 and used for Figures 9 and 10,
* :mod:`repro.noc` — the multi-tile SoC substrate: pluggable topologies
  (2-D mesh, torus, faulty-link meshes), table-driven routing, heterogeneous
  tiles, lane allocation, spatial mapping, best-effort configuration network
  and the Central Coordination Node,
* :mod:`repro.apps` — the wireless applications that motivate the design
  (HiperLAN/2, UMTS, DRM) and the benchmark traffic scenarios,
* :mod:`repro.experiments` — harnesses that regenerate every table and figure
  of the paper's evaluation,
* :mod:`repro.sim` — the two-phase synchronous simulation kernel everything
  runs on.

Quickstart::

    from repro import CircuitSwitchedRouter, LaneLink, Port
    from repro.sim import SimulationKernel

    router = CircuitSwitchedRouter("r0")
    router.attach_link(Port.EAST, LaneLink("rx"), LaneLink("tx"))
    router.configure(Port.EAST, 0, Port.TILE, 0)   # tile lane 0 -> east lane 0
    router.tile.send(0, 0xBEEF)
    kernel = SimulationKernel(frequency_hz=25e6)
    kernel.add(router)
    kernel.run(10)

See ``examples/`` for complete, runnable scenarios and ``benchmarks/`` for the
table/figure reproductions.
"""

from repro.common import Port
from repro.core import (
    CircuitSwitchedRouter,
    ConfigurationCommand,
    ConfigurationMemory,
    FlowControlConfig,
    LaneHeader,
    LaneLink,
    LanePacket,
)
from repro.baseline import AetherealReference, PacketLink, PacketSwitchedRouter
from repro.energy import (
    CircuitSwitchedRouterArea,
    PacketSwitchedRouterArea,
    PowerBreakdown,
    PowerModel,
    Technology,
    TSMC_130NM_LVHP,
)
from repro.noc import (
    CentralCoordinationNode,
    CircuitSwitchedNoC,
    IrregularMesh,
    LaneAllocator,
    Mesh2D,
    PacketSwitchedNoC,
    RoutingTable,
    SlotTableAllocator,
    SpatialMapper,
    TileGrid,
    TimeDivisionNoC,
    Topology,
    Torus2D,
    build_network,
)
from repro.apps import BitFlipPattern, ProcessGraph, Scenario, SCENARIOS

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "Port",
    "CircuitSwitchedRouter",
    "ConfigurationCommand",
    "ConfigurationMemory",
    "FlowControlConfig",
    "LaneHeader",
    "LaneLink",
    "LanePacket",
    "AetherealReference",
    "PacketLink",
    "PacketSwitchedRouter",
    "CircuitSwitchedRouterArea",
    "PacketSwitchedRouterArea",
    "PowerBreakdown",
    "PowerModel",
    "Technology",
    "TSMC_130NM_LVHP",
    "CentralCoordinationNode",
    "CircuitSwitchedNoC",
    "IrregularMesh",
    "LaneAllocator",
    "Mesh2D",
    "PacketSwitchedNoC",
    "RoutingTable",
    "SlotTableAllocator",
    "SpatialMapper",
    "TileGrid",
    "TimeDivisionNoC",
    "Topology",
    "Torus2D",
    "build_network",
    "BitFlipPattern",
    "ProcessGraph",
    "Scenario",
    "SCENARIOS",
]
